package tenant

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/core"
)

// coresAt builds core views with the given free times (cold, no history),
// the shape most Pick unit tests need.
func coresAt(freeAt ...uint64) []CoreView {
	cores := make([]CoreView, len(freeAt))
	for i, f := range freeAt {
		cores[i] = CoreView{FreeAt: f, LastTenant: -1}
	}
	return cores
}

func TestRegistry(t *testing.T) {
	want := []string{PolicyRoundRobin, PolicyLeastLag, PolicyDeadline, PolicyWFQ, PolicyPriority, PolicyAffinity}
	got := Policies()
	if len(got) != len(want) {
		t.Fatalf("Policies() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("policy %d = %q, want %q (registration order is part of the contract)", i, got[i], want[i])
		}
	}
	if err := ValidPolicy("fifo?"); err == nil {
		t.Error("unknown policy must be rejected")
	}
	if err := ValidPolicy(""); err != nil {
		t.Errorf("empty policy is the default and must validate: %v", err)
	}
	if _, err := NewScheduler("fifo?", PoolConfig{}, 1); err == nil {
		t.Error("NewScheduler must reject unknown policies")
	}
	if def, err := NewScheduler("", PoolConfig{}, 1); err != nil || def.Name() != PolicyLeastLag {
		t.Errorf("empty policy must default to least-lag, got %v, %v", def, err)
	}
	base := BaselinePolicies()
	if len(base) != 2 || base[0] != PolicyRoundRobin || base[1] != PolicyLeastLag {
		t.Errorf("BaselinePolicies() = %v", base)
	}
}

func TestRegisterReplacesInPlace(t *testing.T) {
	// Register swaps builders inside the shared backing array, so restoring
	// the registry needs an element copy, not just the slice header —
	// otherwise every later test's wfq silently drops its migration
	// penalty.
	saved := append([]registration(nil), registry...)
	defer func() { registry = saved }()

	before := Policies()
	Register(PolicyWFQ, func(PoolConfig, int) Scheduler { return &wfq{} })
	after := Policies()
	if len(after) != len(before) {
		t.Fatalf("re-registering an existing policy must not grow the registry: %v -> %v", before, after)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Errorf("registry order changed at %d: %q -> %q", i, before[i], after[i])
		}
	}
}

func TestParseWeights(t *testing.T) {
	got, err := ParseWeights(" 2, 1,0.5 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 1, 0.5}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("weight %d = %g, want %g", i, got[i], want[i])
		}
	}
	if got, err := ParseWeights(""); err != nil || got != nil {
		t.Errorf("empty weight list must parse to nil, got %v, %v", got, err)
	}
	for _, bad := range []string{"1,zero", "0", "-1", "1,,2", "+Inf", "NaN"} {
		if _, err := ParseWeights(bad); err == nil {
			t.Errorf("weights %q must be rejected", bad)
		}
	}
}

func TestTenantViews(t *testing.T) {
	pool := PoolConfig{Cores: 2, Weights: []float64{4, 1}, DeadlineCycles: 123}
	views := pool.tenantViews(4)
	for i, want := range []float64{4, 1, 4, 1} {
		if views[i].Weight != want {
			t.Errorf("weight %d = %g, want %g (weights cycle)", i, views[i].Weight, want)
		}
	}
	// Tiers derive from weights when unset: weight > 1 joins tier 0.
	for i, want := range []int{0, 1, 0, 1} {
		if views[i].Tier != want {
			t.Errorf("tier %d = %d, want %d", i, views[i].Tier, want)
		}
	}
	for i := range views {
		if views[i].DeadlineCycles != 123 {
			t.Errorf("deadline %d = %d, want 123", i, views[i].DeadlineCycles)
		}
	}

	def := PoolConfig{Cores: 1}.tenantViews(2)
	for i := range def {
		if def[i].Weight != 1 || def[i].Tier != 1 || def[i].DeadlineCycles != DefaultDeadlineCycles {
			t.Errorf("default view %d = %+v", i, def[i])
		}
	}

	explicit := PoolConfig{Cores: 1, Tiers: []int{2, -1}, Weights: []float64{-3}}.tenantViews(3)
	for i, want := range []int{2, -1, 2} {
		if explicit[i].Tier != want {
			t.Errorf("explicit tier %d = %d, want %d (tiers cycle; negatives outrank 0 and are preserved)", i, explicit[i].Tier, want)
		}
	}
	if explicit[0].Weight != 1 {
		t.Errorf("non-positive weight must clamp to 1, got %g", explicit[0].Weight)
	}
}

func mustSched(t *testing.T, policy string, pool PoolConfig, n int) Scheduler {
	t.Helper()
	s, err := NewScheduler(policy, pool, n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRoundRobinPick(t *testing.T) {
	rr := mustSched(t, PolicyRoundRobin, PoolConfig{}, 1)
	cores := coresAt(100, 0, 50)
	views := make([]TenantView, 1)
	want := []int{0, 1, 2, 0}
	for i, w := range want {
		if got := rr.Pick(Request{}, cores, views); got != w {
			t.Errorf("round-robin pick %d = %d, want %d", i, got, w)
		}
	}
}

func TestLeastLagPick(t *testing.T) {
	ll := mustSched(t, PolicyLeastLag, PoolConfig{}, 1)
	views := make([]TenantView, 1)
	if c := ll.Pick(Request{}, coresAt(100, 0, 50), views); c != 1 {
		t.Errorf("least-lag picked core %d, want the idle core 1", c)
	}
	if c := ll.Pick(Request{}, coresAt(7, 7, 7), views); c != 0 {
		t.Errorf("least-lag tie must break low, got %d", c)
	}
}

func TestDeadlinePick(t *testing.T) {
	pool := PoolConfig{Cores: 2}
	views := pool.tenantViews(1)
	views[0].DeadlineCycles = 200
	d := mustSched(t, PolicyDeadline, pool, 1)

	// Both cores meet the deadline (lags 10 and 110): keep the idle core
	// in reserve and take the busier one.
	req := Request{Tenant: 0, Ready: 0, Cost: 10}
	if c := d.Pick(req, coresAt(0, 100), views); c != 1 {
		t.Errorf("deadline picked core %d, want the latest feasible core 1", c)
	}
	// Only the idle core meets a 50-cycle deadline.
	views[0].DeadlineCycles = 50
	if c := d.Pick(req, coresAt(0, 100), views); c != 0 {
		t.Errorf("deadline picked core %d, want the only feasible core 0", c)
	}
	// No core can meet a 5-cycle deadline: degrade to least-lag.
	views[0].DeadlineCycles = 5
	if c := d.Pick(req, coresAt(80, 60), views); c != 1 {
		t.Errorf("deadline picked core %d, want the earliest-free fallback 1", c)
	}
}

// TestDeadlinePickExactProjection pins the channel-aware projection: the
// transport latency and the tenant's own in-channel consumption floor
// (ChannelFree) now count against the deadline, so a core the old
// clock-only approximation would have accepted is correctly rejected.
func TestDeadlinePickExactProjection(t *testing.T) {
	pool := PoolConfig{Cores: 2}
	views := pool.tenantViews(1)
	d := mustSched(t, PolicyDeadline, pool, 1)
	req := Request{Tenant: 0, Ready: 1000, Cost: 50}

	// Transport latency: core 1 (free at ready+40) projects lag 90 under
	// the old approximation but 50+40=90 -> with latency 30 the record is
	// only visible at ready+30, so the true lag is still 90; tighten the
	// deadline so the latency is what breaks feasibility on the idle core.
	views[0].DeadlineCycles = 70
	views[0].TransportLatency = 30
	// Idle core: true lag = 30 + 50 = 80 > 70; the old projection said 50
	// <= 70 and would have accepted. Nothing is feasible -> least-lag.
	if c := d.Pick(req, coresAt(0, 1040), views); c != 0 {
		t.Errorf("deadline picked core %d, want the earliest-free fallback 0 (latency makes both infeasible)", c)
	}
	views[0].DeadlineCycles = 80
	// Now the idle core is exactly feasible (80 <= 80) and the busy one is
	// not (1040-1000+50=90 > 80): the projection must separate them.
	if c := d.Pick(req, coresAt(0, 1040), views); c != 0 {
		t.Errorf("deadline picked core %d, want the only feasible core 0", c)
	}

	// In-channel ordering: the tenant's previous record finishes at
	// ready+100, so no core can start this one before then. The old
	// approximation saw two feasible cores; the exact one sees none.
	views[0].TransportLatency = 0
	views[0].DeadlineCycles = 120
	views[0].ChannelFree = 1100
	if c := d.Pick(req, coresAt(0, 1010), views); c != 0 {
		t.Errorf("deadline picked core %d, want the earliest-free fallback 0 (ChannelFree makes both infeasible)", c)
	}
	// Relax the deadline past channel-free + cost: both become feasible
	// again and the latest-free core is held.
	views[0].DeadlineCycles = 150
	if c := d.Pick(req, coresAt(0, 1010), views); c != 1 {
		t.Errorf("deadline picked core %d, want the latest feasible core 1", c)
	}
}

// TestAffinityPick covers the warmth-aware policy's three behaviours:
// charge-aware projection, stickiness to the previous core under
// hysteresis, and migration when another core wins decisively.
func TestAffinityPick(t *testing.T) {
	pool := PoolConfig{Cores: 2, MigrationPenalty: 100}
	views := pool.tenantViews(1)
	a := mustSched(t, PolicyAffinity, pool, 1)
	req := Request{Tenant: 0, Ready: 0, Cost: 10}

	// No history: the cold idle core projects 10+100=110, the warm busy
	// core projects 40+10+0=50. Warmth must beat idleness.
	cores := coresAt(40, 0)
	cores[0].Warmth = 1
	if c := a.Pick(req, cores, views); c != 0 {
		t.Errorf("affinity picked core %d, want the warm core 0 despite its backlog", c)
	}

	// Stickiness: the tenant is now pinned to core 0. A rival core that
	// wins by less than penalty/2 must not trigger a migration...
	cores = coresAt(200, 60)
	cores[0].Warmth = 1 // projections: stay = 210, move = 170 — wins by 40 < 50
	if c := a.Pick(req, cores, views); c != 0 {
		t.Errorf("affinity picked core %d, want to stay on the warm core 0 under hysteresis", c)
	}
	// ...but a decisive win (more than penalty/2 cheaper) must.
	cores = coresAt(300, 0)
	cores[0].Warmth = 1 // stay = 310, move = 110: 110+50 < 310
	if c := a.Pick(req, cores, views); c != 1 {
		t.Errorf("affinity picked core %d, want to migrate to core 1", c)
	}

	// At penalty 0 it degrades to least-lag with stickiness: ties and
	// small wins keep the current core, real wins move.
	zero := mustSched(t, PolicyAffinity, PoolConfig{Cores: 2}, 1)
	if c := zero.Pick(req, coresAt(0, 50), views); c != 0 {
		t.Errorf("zero-penalty affinity picked core %d, want least-lag's core 0", c)
	}
	if c := zero.Pick(req, coresAt(60, 50), views); c != 1 {
		t.Errorf("zero-penalty affinity picked core %d, want the earlier core 1 (no charge to save)", c)
	}
}

func TestWFQPick(t *testing.T) {
	w := mustSched(t, PolicyWFQ, PoolConfig{}, 2)
	views := []TenantView{
		{Weight: 1, ServedBits: 4000}, // vtime 4000: overserved
		{Weight: 1, ServedBits: 100},  // vtime 100: underserved
	}
	cores := coresAt(500, 90)
	if c := w.Pick(Request{Tenant: 1}, cores, views); c != 1 {
		t.Errorf("wfq gave the underserved tenant core %d, want the earliest-free core 1", c)
	}
	if c := w.Pick(Request{Tenant: 0}, cores, views); c != 0 {
		t.Errorf("wfq gave the overserved tenant core %d, want the latest-free core 0", c)
	}
	// Weights rescale the virtual clocks: 4000 bits at weight 8 is less
	// virtual time than 1000 bits at weight 1.
	views[0].Weight = 8
	views[1].ServedBits = 1000
	if c := w.Pick(Request{Tenant: 0}, cores, views); c != 1 {
		t.Errorf("weighted wfq gave the heavy tenant core %d, want the earliest-free core 1", c)
	}
	// Done tenants drop out of the ranking: alone, the requester gets the
	// earliest-free core regardless of its clock.
	views[1].Done = true
	views[0].Weight = 1
	if c := w.Pick(Request{Tenant: 0}, cores, views); c != 1 {
		t.Errorf("wfq with a lone active tenant picked core %d, want 1", c)
	}
}

func TestPriorityPick(t *testing.T) {
	p := mustSched(t, PolicyPriority, PoolConfig{}, 2)
	views := []TenantView{
		{Weight: 1, Tier: 1, ServedBits: 0},    // worse tier, no service yet
		{Weight: 1, Tier: 0, ServedBits: 9000}, // premium tier, heavily served
	}
	cores := coresAt(500, 90)
	// Strict tiers: the premium tenant outranks the tier-1 tenant even
	// with far more consumed service.
	if c := p.Pick(Request{Tenant: 1}, cores, views); c != 1 {
		t.Errorf("priority gave the premium tenant core %d, want the earliest-free core 1", c)
	}
	if c := p.Pick(Request{Tenant: 0}, cores, views); c != 0 {
		t.Errorf("priority gave the tier-1 tenant core %d, want the latest-free core 0", c)
	}
	// Inside one tier it degenerates to WFQ.
	views[0].Tier = 0
	if c := p.Pick(Request{Tenant: 0}, cores, views); c != 1 {
		t.Errorf("priority within a tier gave the underserved tenant core %d, want 1", c)
	}
}

// TestRankWarmTieBreak pins the rank-mapping bugfix: once migrations are
// priced, wfq and priority break equal-FreeAt ties toward the requester's
// warmest core instead of blindly toward the lowest index; at penalty
// zero the mapping (and every penalty-0 artifact) stays the warmth-blind
// original, and warmth never overrides a strictly earlier FreeAt.
func TestRankWarmTieBreak(t *testing.T) {
	views := []TenantView{{Weight: 1}}
	for _, policy := range []string{PolicyWFQ, PolicyPriority} {
		tied := coresAt(40, 40, 40)
		tied[1].Warmth = 0.3
		tied[2].Warmth = 0.8

		cold := mustSched(t, policy, PoolConfig{}, 1)
		if c := cold.Pick(Request{Tenant: 0}, tied, views); c != 0 {
			t.Errorf("%s at penalty 0 picked core %d, want the lowest-index core 0", policy, c)
		}
		warm := mustSched(t, policy, PoolConfig{MigrationPenalty: 320}, 1)
		if c := warm.Pick(Request{Tenant: 0}, tied, views); c != 2 {
			t.Errorf("%s at penalty 320 picked core %d, want the warmest tied core 2", policy, c)
		}

		// Warmth only breaks ties: a strictly earlier-free cold core wins.
		early := coresAt(10, 40, 40)
		early[2].Warmth = 0.8
		if c := warm.Pick(Request{Tenant: 0}, early, views); c != 0 {
			t.Errorf("%s let warmth override an earlier FreeAt: picked core %d, want 0", policy, c)
		}
	}
}

// schedTestPool is the policy-input-rich pool the invariant tests sweep.
func schedTestPool(policy string, cores int) PoolConfig {
	return PoolConfig{
		Cores:          cores,
		Policy:         policy,
		Weights:        []float64{2, 1},
		DeadlineCycles: 1_500,
	}
}

// TestReplayInvariantsAllPolicies runs every registered policy over a
// contended pool and checks the replay invariants the scheduler contract
// promises: conservation of records and lifeguard work across policies,
// monotone clocks, utilisation within (0, 1], and ordered lag quantiles.
func TestReplayInvariantsAllPolicies(t *testing.T) {
	tenants, err := FromSuite(5, testWorkload(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(0, nil)
	ctx := context.Background()

	var wantRecords []uint64
	var wantBusy uint64
	for _, policy := range Policies() {
		res, err := eng.RunPool(ctx, tenants, schedTestPool(policy, 2))
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if res.Policy != policy {
			t.Errorf("result policy %q, want %q", res.Policy, policy)
		}
		if len(res.CoreBusyCycles) != 2 {
			t.Errorf("%s: busy vector has %d entries, want 2", policy, len(res.CoreBusyCycles))
		}
		if res.Utilisation <= 0 || res.Utilisation > 1 {
			t.Errorf("%s: utilisation %f out of (0, 1]", policy, res.Utilisation)
		}
		var busy uint64
		for _, b := range res.CoreBusyCycles {
			busy += b
		}
		var maxWall uint64
		for i, tr := range res.Tenants {
			if tr.WallCycles < tr.AppCycles {
				t.Errorf("%s/%s: wall %d < app %d", policy, tr.Name, tr.WallCycles, tr.AppCycles)
			}
			if tr.Slowdown < 1 {
				t.Errorf("%s/%s: slowdown %f < 1", policy, tr.Name, tr.Slowdown)
			}
			if tr.ContentionX < 1 {
				t.Errorf("%s/%s: contention factor %f < 1 (pooling cannot beat a dedicated core)",
					policy, tr.Name, tr.ContentionX)
			}
			if tr.ContentionX > res.MaxContentionX {
				t.Errorf("%s/%s: contention %f exceeds cell max %f", policy, tr.Name, tr.ContentionX, res.MaxContentionX)
			}
			if tr.LagP50Cycles > tr.LagP95Cycles || tr.LagP95Cycles > tr.MaxLagCycles {
				t.Errorf("%s/%s: lag quantiles out of order: p50=%d p95=%d max=%d",
					policy, tr.Name, tr.LagP50Cycles, tr.LagP95Cycles, tr.MaxLagCycles)
			}
			if tr.WallCycles > maxWall {
				maxWall = tr.WallCycles
			}
			if wantRecords != nil && tr.Records != wantRecords[i] {
				t.Errorf("%s/%s: served %d records, other policies served %d (conservation)",
					policy, tr.Name, tr.Records, wantRecords[i])
			}
		}
		if res.MakespanCycles != maxWall {
			t.Errorf("%s: makespan %d != max wall %d", policy, res.MakespanCycles, maxWall)
		}
		if wantRecords == nil {
			wantRecords = make([]uint64, len(res.Tenants))
			for i, tr := range res.Tenants {
				wantRecords[i] = tr.Records
			}
			wantBusy = busy
		} else if busy != wantBusy {
			t.Errorf("%s: total lifeguard work %d differs from other policies' %d (conservation)", policy, busy, wantBusy)
		}
	}
}

// TestSchedMatrixDeterminism is the tentpole's determinism contract over
// the full registry: an 8-worker matrix of every policy (with weights and
// deadlines set) must serialise byte-identically to the serial reference.
func TestSchedMatrixDeterminism(t *testing.T) {
	tenants, err := FromSuite(4, testWorkload(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var pools []PoolConfig
	for _, policy := range Policies() {
		pools = append(pools, schedTestPool(policy, 2), schedTestPool(policy, 4))
	}
	run := func(workers int) []byte {
		eng := NewEngine(workers, nil)
		results, err := eng.RunMatrix(context.Background(), tenants, pools)
		if err != nil {
			t.Fatal(err)
		}
		cells := make([]any, 0, len(results))
		for _, r := range results {
			cells = append(cells, r.Cell())
		}
		blob, err := json.MarshalIndent(cells, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("parallel sched matrix differs from serial reference:\nserial:   %.400s\nparallel: %.400s",
			serial, parallel)
	}
}

// TestWFQWeightsShiftLag: three clones of the same tenant contend for two
// cores; the tenant with an outsized weight must see no worse lag than its
// identically-shaped peers.
func TestWFQWeightsShiftLag(t *testing.T) {
	clones := cloneTenants(3)
	eng := NewEngine(0, nil)
	res, err := eng.RunPool(context.Background(), clones,
		PoolConfig{Cores: 2, Policy: PolicyWFQ, Weights: []float64{8, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	heavy := res.Tenants[0]
	for _, other := range res.Tenants[1:] {
		if heavy.MeanLagCycles > other.MeanLagCycles {
			t.Errorf("weight-8 tenant lags %f cycles on average, more than weight-1 peer %s at %f",
				heavy.MeanLagCycles, other.Name, other.MeanLagCycles)
		}
	}
}

// TestPriorityTierShiftsLag: the lone premium-tier clone must see no worse
// lag than its best-effort peers.
func TestPriorityTierShiftsLag(t *testing.T) {
	clones := cloneTenants(3)
	eng := NewEngine(0, nil)
	res, err := eng.RunPool(context.Background(), clones,
		PoolConfig{Cores: 2, Policy: PolicyPriority, Tiers: []int{0, 1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	premium := res.Tenants[0]
	for _, other := range res.Tenants[1:] {
		if premium.MeanLagCycles > other.MeanLagCycles {
			t.Errorf("tier-0 tenant lags %f cycles on average, more than tier-1 peer %s at %f",
				premium.MeanLagCycles, other.Name, other.MeanLagCycles)
		}
	}
}

// TestEmptyTimelineTenantInvisible: a tenant that produces no records
// must be marked done from the first step, so it never sits in the
// wfq/priority rankings as an eternally-underserved peer shifting every
// real tenant's core assignment.
func TestEmptyTimelineTenantInvisible(t *testing.T) {
	real := make([]*Profile, 2)
	for i := range real {
		var steps []step
		for c := uint64(0); c < 200; c++ {
			steps = append(steps, step{cycle: c * 50, bits: 64, cost: 20})
		}
		real[i] = &Profile{
			Tenant:        Tenant{Name: "real", Benchmark: "synthetic", Config: core.DefaultConfig()},
			tl:            encodedTimeline(steps),
			Result:        &core.Result{AppCycles: 10_000, Records: 200, LogBits: 200 * 64},
			Base:          &core.Result{WallCycles: 10_000},
			DedicatedWall: 10_000,
		}
	}
	empty := &Profile{
		Tenant: Tenant{Name: "idle", Benchmark: "synthetic", Config: core.DefaultConfig()},
		Result: &core.Result{AppCycles: 1},
		Base:   &core.Result{WallCycles: 1},
	}
	for _, policy := range []string{PolicyWFQ, PolicyPriority} {
		pool := PoolConfig{Cores: 2, Policy: policy}
		without, err := replay(real, pool)
		if err != nil {
			t.Fatal(err)
		}
		with, err := replay(append(append([]*Profile{}, real...), empty), pool)
		if err != nil {
			t.Fatal(err)
		}
		for i := range real {
			a, b := without.Tenants[i], with.Tenants[i]
			if a.WallCycles != b.WallCycles || a.MeanLagCycles != b.MeanLagCycles {
				t.Errorf("%s: an idle tenant changed tenant %d's schedule: wall %d vs %d, lag %f vs %f",
					policy, i, a.WallCycles, b.WallCycles, a.MeanLagCycles, b.MeanLagCycles)
			}
		}
	}
}

// cloneTenants returns n identically-shaped gzip tenants (distinct names,
// same workload), so lag comparisons between them isolate the scheduler.
func cloneTenants(n int) []Tenant {
	clones := make([]Tenant, n)
	for i := range clones {
		clones[i] = Tenant{
			Name:      "gzip#" + string(rune('a'+i)),
			Benchmark: "gzip",
			Workload:  testWorkload(),
			Config:    core.DefaultConfig(),
		}
	}
	return clones
}
