package tenant

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestMigrationCharge(t *testing.T) {
	cases := []struct {
		penalty uint64
		warmth  float64
		want    uint64
	}{
		{0, 0, 0},      // model off: never charge
		{0, 0.5, 0},    // model off regardless of warmth
		{100, 0, 100},  // stone cold: full penalty
		{100, 1, 0},    // fully warm: free
		{100, 0.5, 50}, // linear in the missing warmth
		{100, 0.75, 25},
		{3, 0.5, 2},   // round half away from zero
		{100, 1.5, 0}, // warmth clamped: never a negative charge
	}
	for _, c := range cases {
		if got := migrationCharge(c.penalty, c.warmth); got != c.want {
			t.Errorf("migrationCharge(%d, %g) = %d, want %d", c.penalty, c.warmth, got, c.want)
		}
	}
	// Monotone in penalty at fixed warmth, and in coldness at fixed penalty.
	for _, w := range []float64{0, 0.25, 0.5, 0.99} {
		prev := uint64(0)
		for _, p := range []uint64{0, 1, 10, 100, 1000} {
			got := migrationCharge(p, w)
			if got < prev {
				t.Errorf("charge not monotone in penalty at warmth %g: %d then %d", w, prev, got)
			}
			prev = got
		}
	}
	for _, p := range []uint64{1, 37, 1000} {
		prev := migrationCharge(p, 1)
		for _, w := range []float64{0.8, 0.6, 0.4, 0.2, 0} {
			got := migrationCharge(p, w)
			if got < prev {
				t.Errorf("charge not monotone in coldness at penalty %d: %d then %d", p, prev, got)
			}
			prev = got
		}
	}
}

// TestPropertyWarmthConservation drives the warmth model with random
// serve sequences and asserts the bounds the fuzz tier also relies on:
// every warmth stays in [0, 1], every per-core warmth total stays below
// 1 (one core holds at most one working set), and the last-core /
// last-tenant pointers agree with the serve history.
func TestPropertyWarmthConservation(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		rng := rand.New(rand.NewSource(seed))
		cores, tenants := 1+rng.Intn(4), 1+rng.Intn(5)
		m := newWarmthModel(cores, tenants, 512, 0)
		lastCore := make([]int, tenants)
		for i := range lastCore {
			lastCore[i] = -1
		}
		for step := 0; step < 2000; step++ {
			c, ti := rng.Intn(cores), rng.Intn(tenants)
			bits := uint64(1 + rng.Intn(4096))
			migrated := m.serve(c, ti, bits)
			if want := lastCore[ti] >= 0 && lastCore[ti] != c; migrated != want {
				t.Fatalf("seed %d step %d: migrated = %v, want %v", seed, step, migrated, want)
			}
			lastCore[ti] = c
			if m.lastTenant(c) != ti {
				t.Fatalf("seed %d step %d: lastTenant(%d) = %d, want %d", seed, step, c, m.lastTenant(c), ti)
			}
			for cc := 0; cc < cores; cc++ {
				var sum float64
				for tt := 0; tt < tenants; tt++ {
					w := m.warmth(cc, tt)
					if w < 0 || w > 1 {
						t.Fatalf("seed %d step %d: warmth[%d][%d] = %g outside [0, 1]", seed, step, cc, tt, w)
					}
					sum += w
				}
				if sum > 1+1e-9 {
					t.Fatalf("seed %d step %d: core %d warmth total %g > 1", seed, step, cc, sum)
				}
			}
		}
	}
}

// TestWarmthHalfLife pins the decay law exactly: serving H bytes of a
// rival on the same core halves a tenant's warmth, and serving the
// tenant itself moves it halfway to 1.
func TestWarmthHalfLife(t *testing.T) {
	const half = 1024
	m := newWarmthModel(1, 2, half, 0)
	// Tenant 0 serves one half-life of bytes: warmth 0 -> 0.5 exactly.
	m.serve(0, 0, half*8)
	if w := m.warmth(0, 0); w != 0.5 {
		t.Fatalf("after one own half-life: warmth = %g, want exactly 0.5", w)
	}
	// A rival serves one half-life: tenant 0 halves to 0.25, rival at 0.5.
	m.serve(0, 1, half*8)
	if w := m.warmth(0, 0); w != 0.25 {
		t.Fatalf("after one rival half-life: warmth = %g, want exactly 0.25", w)
	}
	if w := m.warmth(0, 1); w != 0.5 {
		t.Fatalf("rival warmth = %g, want exactly 0.5", w)
	}
	// Warmth converges toward 1 but never reaches past it.
	for i := 0; i < 200; i++ {
		m.serve(0, 0, half*8)
	}
	if w := m.warmth(0, 0); w <= 0.99 || w > 1 {
		t.Fatalf("warmth after sustained service = %g, want in (0.99, 1]", w)
	}
	// The zero half-life config falls back to the default.
	d := newWarmthModel(1, 1, 0, 0)
	d.serve(0, 0, DefaultWarmthHalfLifeBytes*8)
	if w := d.warmth(0, 0); w != 0.5 {
		t.Fatalf("default half-life: warmth = %g, want 0.5", w)
	}
}

// TestInvariantPenaltyMonotonicity is the deterministic penalty-
// monotonicity invariant on a stall-free workload: with round-robin's
// fixed rotation and no backpressure or drain stalls (so timing cannot
// feed back into the merge order), every tenant's wall clock and charged
// cold cycles are non-decreasing in the migration penalty.
func TestInvariantPenaltyMonotonicity(t *testing.T) {
	profiles := synthSet(7, 3, func(r *rand.Rand) []step {
		// Small, spaced records: default 64 KiB channels never fill, and
		// there are no drain marks, so offsets stay zero at any penalty.
		return burstTimeline(r, 10, 30, 5000, 30, 60, 5, 20)
	})
	var prev *PoolResult
	penalties := []uint64{0, 10, 100, 1000, 5000}
	for _, penalty := range penalties {
		pool := PoolConfig{Cores: 2, Policy: PolicyRoundRobin, MigrationPenalty: penalty}
		res, err := replay(profiles, pool)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range res.Tenants {
			if tr.StallCycles != 0 || tr.DrainCycles != 0 {
				t.Fatalf("penalty %d: workload must be stall-free for the invariant to be provable (tenant %s stalled)",
					penalty, tr.Name)
			}
		}
		if penalty == 0 {
			if res.Migrations != 0 || res.ColdServeCycles != 0 {
				t.Errorf("penalty 0: migration accounting must be off, got %d migrations / %d cold cycles",
					res.Migrations, res.ColdServeCycles)
			}
		} else if res.ColdServeCycles == 0 {
			t.Errorf("penalty %d: round-robin on a shared pool must charge some cold serves", penalty)
		}
		if prev != nil {
			for i := range res.Tenants {
				if res.Tenants[i].WallCycles < prev.Tenants[i].WallCycles {
					t.Errorf("tenant %d: wall %d at penalty %d beats %d at a lower penalty",
						i, res.Tenants[i].WallCycles, penalty, prev.Tenants[i].WallCycles)
				}
				if res.Tenants[i].ColdServeCycles < prev.Tenants[i].ColdServeCycles {
					t.Errorf("tenant %d: cold cycles %d at penalty %d under %d at a lower penalty",
						i, res.Tenants[i].ColdServeCycles, penalty, prev.Tenants[i].ColdServeCycles)
				}
			}
		}
		prev = res
	}
}

// TestInvariantZeroPenaltyCellSchema: at penalty 0 the migration model is
// off, and the JSON cell must be byte-free of every migration field —
// that is what keeps zero-penalty artifacts identical to the pre-warmth
// schema (the cmd-level golden test pins the full artifact).
func TestInvariantZeroPenaltyCellSchema(t *testing.T) {
	profiles := synthSet(11, 2, func(r *rand.Rand) []step {
		return burstTimeline(r, 5, 20, 2000, 5, 20, 5, 20)
	})
	for _, policy := range Policies() {
		// An explicit half-life with penalty 0 must not leak either: the
		// knob only shapes results once migrations are priced.
		res, err := replay(profiles, PoolConfig{Cores: 2, Policy: policy, WarmthHalfLifeBytes: 256})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		blob, err := json.Marshal(res.Cell())
		if err != nil {
			t.Fatal(err)
		}
		for _, field := range []string{"migration_penalty", "warmth_half_life_bytes", "migrations", "cold_serve_cycles"} {
			if strings.Contains(string(blob), `"`+field+`"`) {
				t.Errorf("%s: zero-penalty cell JSON leaks %q:\n%.300s", policy, field, blob)
			}
		}
	}
	// And with the model on, the fields appear.
	res, err := replay(profiles, PoolConfig{Cores: 2, Policy: PolicyAffinity, MigrationPenalty: 50})
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := json.Marshal(res.Cell())
	for _, field := range []string{"migration_penalty", "cold_serve_cycles"} {
		if !strings.Contains(string(blob), `"`+field+`"`) {
			t.Errorf("penalty-50 cell JSON missing %q:\n%.300s", field, blob)
		}
	}
}

// TestWarmthIdleDecay pins the vacancy-decay arithmetic: an idle span
// ages every tenant on the core by 2^(-idle/idleHalfLife) — one
// half-life exactly halves the whole row, zero idle is a no-op, relative
// order within the row is preserved, and other cores are untouched.
func TestWarmthIdleDecay(t *testing.T) {
	m := newWarmthModel(2, 3, 0, 0)
	m.serve(0, 0, 4096)
	m.serve(0, 1, 2048)
	m.serve(1, 2, 4096)
	before := m.snapshot()

	m.idleDecay(0, 0)
	if !reflect.DeepEqual(m.snapshot(), before) {
		t.Fatal("zero idle span changed warmth")
	}

	m.idleDecay(0, DefaultWarmthIdleHalfLifeCycles)
	after := m.snapshot()
	for tn, w := range after[0] {
		if want := before[0][tn] / 2; w != want {
			t.Errorf("tenant %d on core 0: warmth %g after one idle half-life, want exactly %g", tn, w, want)
		}
	}
	if !reflect.DeepEqual(after[1], before[1]) {
		t.Errorf("idle decay on core 0 touched core 1: %v -> %v", before[1], after[1])
	}
}

// TestWarmthIdleDecayReplayGating pins the bugfix's replay-level gate:
// fixed-set replays never invoke idle decay — the half-life knob cannot
// change a single byte of them — while churned replays do, so the same
// knob must move their warmth/migration accounting (pre-fix, warmth froze
// across vacancies and the knob was unobservable everywhere).
func TestWarmthIdleDecayReplayGating(t *testing.T) {
	// 4 cores over 4 staggered tenants leave idle gaps on served cores;
	// at 2 cores affinity packs work densely enough that no gap surfaces.
	pool := PoolConfig{Cores: 4, Policy: PolicyAffinity, MigrationPenalty: 320}
	slow := pool
	slow.WarmthIdleHalfLifeCycles = 1 << 40 // effectively no idle decay

	fixed := dispatchSuiteProfiles(t, 4, Churn{})
	a, err := ReplayPool(fixed, pool, DispatchBatched)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplayPool(fixed, slow, DispatchBatched)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("idle half-life changed a fixed-set replay; decay must gate on churn")
	}

	churned := dispatchSuiteProfiles(t, 4, Churn{Rate: 0.5})
	c, err := ReplayPool(churned, pool, DispatchBatched)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ReplayPool(churned, slow, DispatchBatched)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(c, d) {
		t.Error("churned replay ignored the idle half-life knob; vacancies no longer decay warmth")
	}
}
