package tenant

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// longSyntheticProfile builds a drain-free synthetic tenant of n records —
// cheap to generate, expensive to replay in full — for the cancellation
// tier.
func longSyntheticProfile(t *testing.T, name string, n int) *Profile {
	t.Helper()
	p, err := NewSyntheticProfile(name, n, 64, func(i int) SyntheticStep {
		return SyntheticStep{Cycle: uint64(i) * 4, Bits: 8, Cost: 2}
	})
	if err != nil {
		t.Fatalf("synthetic profile: %v", err)
	}
	return p
}

// TestReplayCancelledBeforeStart pins the entry check: a context that is
// already cancelled aborts every dispatch path (and Engine.RunPool)
// before any merge work, returning ctx.Err() and no result.
func TestReplayCancelledBeforeStart(t *testing.T) {
	profiles := []*Profile{longSyntheticProfile(t, "a", 1000), longSyntheticProfile(t, "b", 1000)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	for _, mode := range []Dispatch{DispatchBatched, DispatchPerRecord, DispatchSharded} {
		pool := PoolConfig{Cores: 2, Policy: PolicyLeastLag}
		if mode == DispatchSharded {
			pool.Shards = 2
		}
		res, err := ReplayPoolContext(ctx, profiles, pool, mode)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("mode %d: want context.Canceled, got %v", mode, err)
		}
		if res != nil {
			t.Errorf("mode %d: cancelled replay must not return a result", mode)
		}
	}

	eng := NewEngine(1, nil)
	set, err := FromSuite(1, workloads.Config{Scale: 2000, Seed: 1, Threads: 2}, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RunPool(ctx, set, PoolConfig{Cores: 1, Policy: PolicyLeastLag}); !errors.Is(err, context.Canceled) {
		t.Errorf("Engine.RunPool: want context.Canceled, got %v", err)
	}
}

// TestReplayCancelAbortsWithinWindow is the acceptance bound: a context
// cancelled mid-replay aborts the merge within one decode window — the
// cancellation check sits at cursor-refill boundaries, so at most
// StepWindow more records are served after the cancel lands.
func TestReplayCancelAbortsWithinWindow(t *testing.T) {
	const window = 256
	const cancelAt = 10
	for _, mode := range []Dispatch{DispatchBatched, DispatchPerRecord} {
		profiles := []*Profile{longSyntheticProfile(t, "long", 100_000)}
		pool := PoolConfig{Cores: 1, Policy: PolicyLeastLag, StepWindow: window}
		ctx, cancel := context.WithCancel(context.Background())
		served, after := 0, 0
		res, err := replayMode(ctx, profiles, pool, func(ti, core int, req Request, charge, finish uint64) {
			served++
			if served == cancelAt {
				cancel()
			}
			if served > cancelAt {
				after++
			}
		}, mode)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("mode %d: want context.Canceled, got %v", mode, err)
		}
		if res != nil {
			t.Fatalf("mode %d: cancelled replay must not return a result", mode)
		}
		if after > window {
			t.Errorf("mode %d: %d records served after cancel; the refill check bounds it by the %d-step window", mode, after, window)
		}
	}
}

// gateTimeline wraps a timeline and closes signal once `after` steps have
// been decoded by any traversal — the deterministic hook the sharded
// cancellation test uses to cancel only once the replay is provably in
// flight.
type gateTimeline struct {
	inner  Timeline
	after  int
	signal chan struct{}
	once   sync.Once
	mu     sync.Mutex
	seen   int
}

func (g *gateTimeline) Len() int { return g.inner.Len() }

func (g *gateTimeline) Open() StepSource { return &gateSource{g: g, src: g.inner.Open()} }

type gateSource struct {
	g   *gateTimeline
	src StepSource
}

func (s *gateSource) Next(dst []step) int {
	n := s.src.Next(dst)
	s.g.mu.Lock()
	s.g.seen += n
	fire := s.g.seen >= s.g.after
	s.g.mu.Unlock()
	if fire {
		s.g.once.Do(func() { close(s.g.signal) })
	}
	return n
}

// TestShardedReplayCancelMidFlight cancels a sharded replay once its
// decode has demonstrably started and asserts the whole fan-out aborts
// with ctx.Err() instead of waiting out the timelines.
func TestShardedReplayCancelMidFlight(t *testing.T) {
	const steps = 500_000
	profiles := []*Profile{
		longSyntheticProfile(t, "a", steps),
		longSyntheticProfile(t, "b", steps),
	}
	signal := make(chan struct{})
	for _, p := range profiles {
		p.tl = &gateTimeline{inner: p.tl, after: steps / 10, signal: signal}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-signal
		cancel()
	}()
	res, err := ReplayPoolContext(ctx, profiles, PoolConfig{Cores: 2, Policy: PolicyLeastLag, Shards: 2}, DispatchSharded)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res != nil {
		t.Fatal("cancelled sharded replay must not return a result")
	}
}

// TestNegativeStepWindowRejected pins the validation boundary: a negative
// decode window is an error everywhere a PoolConfig enters the replay,
// not a silent coercion to DefaultStepWindow.
func TestNegativeStepWindowRejected(t *testing.T) {
	profiles := []*Profile{longSyntheticProfile(t, "w", 100)}
	pool := PoolConfig{Cores: 1, Policy: PolicyLeastLag, StepWindow: -1}

	cases := []struct {
		name string
		call func() error
	}{
		{"ReplayPool/batched", func() error {
			_, err := ReplayPool(profiles, pool, DispatchBatched)
			return err
		}},
		{"ReplayPool/per-record", func() error {
			_, err := ReplayPool(profiles, pool, DispatchPerRecord)
			return err
		}},
		{"ReplayPool/sharded", func() error {
			_, err := ReplayPool(profiles, pool, DispatchSharded)
			return err
		}},
		{"Engine.RunPool", func() error {
			set, err := FromSuite(1, workloads.Config{Scale: 2000, Seed: 1, Threads: 2}, core.DefaultConfig())
			if err != nil {
				return err
			}
			_, err = NewEngine(1, nil).RunPool(context.Background(), set, pool)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.call()
			if err == nil {
				t.Fatal("negative StepWindow accepted")
			}
			if !strings.Contains(err.Error(), "step window") {
				t.Fatalf("error does not name the step window: %v", err)
			}
		})
	}
}
