package tenant

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// TestProfileCacheBounded is the churn-growth bound: a long-lived engine
// profiling an open-ended stream of distinct tenants (every admission is
// a new memo key) retains at most its cache limit, instead of growing
// without bound as the unbounded memo this replaces did.
func TestProfileCacheBounded(t *testing.T) {
	eng := NewEngine(1, nil)
	if got := eng.profiles.Limit(); got != DefaultProfileCache {
		t.Fatalf("default profile cache limit = %d, want %d", got, DefaultProfileCache)
	}
	const limit = 4
	eng.SetProfileCacheLimit(limit)

	ctx := context.Background()
	const churned = 3 * limit
	for i := 0; i < churned; i++ {
		tn := Tenant{
			Name:      "churn",
			Benchmark: "gzip",
			Lifeguard: DefaultLifeguard("gzip"),
			// A distinct seed per arrival makes every tenant a distinct
			// memo key, the shape a serving daemon's admissions produce.
			Workload: workloads.Config{Scale: 2000, Seed: uint64(i + 1), Threads: 1},
			Config:   core.DefaultConfig(),
		}
		if _, err := eng.Profile(ctx, tn); err != nil {
			t.Fatal(err)
		}
		if got := eng.ProfileCacheLen(); got > limit {
			t.Fatalf("after %d distinct tenants the profile cache holds %d, limit is %d", i+1, got, limit)
		}
	}
	if got := eng.profiles.Misses(); got != churned {
		t.Fatalf("misses = %d, want %d (every tenant was distinct)", got, churned)
	}

	// Within the bound the memo still memoizes: re-profiling the most
	// recent tenant is a hit, not a recompute.
	hits := eng.profiles.Hits()
	tn := Tenant{
		Name:      "churn",
		Benchmark: "gzip",
		Lifeguard: DefaultLifeguard("gzip"),
		Workload:  workloads.Config{Scale: 2000, Seed: churned, Threads: 1},
		Config:    core.DefaultConfig(),
	}
	if _, err := eng.Profile(ctx, tn); err != nil {
		t.Fatal(err)
	}
	if eng.profiles.Hits() != hits+1 {
		t.Error("re-profiling a retained tenant recomputed instead of hitting the cache")
	}
}
