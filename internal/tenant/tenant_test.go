package tenant

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

const testScale = 60_000

func testWorkload() workloads.Config { return workloads.Config{Scale: testScale} }

// TestSingleTenantMatchesDirectLBA is the decomposition contract: one
// tenant on a one-core pool must reproduce core.RunLBA cycle for cycle —
// profiling plus channel replay is exact, not an approximation. This
// holds for multithreaded workloads too because scheduling quanta are
// instruction-based, so transport stalls cannot perturb the app side.
func TestSingleTenantMatchesDirectLBA(t *testing.T) {
	for _, bench := range []string{"gzip", "mcf", "water"} {
		for _, policy := range Policies() {
			t.Run(bench+"/"+policy, func(t *testing.T) {
				wcfg := testWorkload()
				ccfg := core.DefaultConfig()
				spec, err := workloads.ByName(bench)
				if err != nil {
					t.Fatal(err)
				}
				direct, err := core.RunLBA(spec.Build(wcfg), DefaultLifeguard(bench), ccfg)
				if err != nil {
					t.Fatal(err)
				}
				eng := NewEngine(1, nil)
				pr, err := eng.RunPool(context.Background(),
					[]Tenant{{Benchmark: bench, Workload: wcfg, Config: ccfg}},
					PoolConfig{Cores: 1, Policy: policy})
				if err != nil {
					t.Fatal(err)
				}
				tr := pr.Tenants[0]
				if tr.AppCycles != direct.AppCycles {
					t.Errorf("app cycles: replay %d, direct %d", tr.AppCycles, direct.AppCycles)
				}
				if tr.WallCycles != direct.WallCycles {
					t.Errorf("wall cycles: replay %d, direct %d", tr.WallCycles, direct.WallCycles)
				}
				if tr.StallCycles != direct.BufferStallCycles {
					t.Errorf("stall cycles: replay %d, direct %d", tr.StallCycles, direct.BufferStallCycles)
				}
				if tr.DrainCycles != direct.DrainStallCycles {
					t.Errorf("drain cycles: replay %d, direct %d", tr.DrainCycles, direct.DrainStallCycles)
				}
				if tr.Records != direct.Records || tr.LogBits != direct.LogBits {
					t.Errorf("log volume: replay %d/%d, direct %d/%d",
						tr.Records, tr.LogBits, direct.Records, direct.LogBits)
				}
			})
		}
	}
}

// poolMatrix is the cell set the determinism tests sweep.
func poolMatrix() []PoolConfig {
	var pools []PoolConfig
	for _, policy := range Policies() {
		for _, cores := range []int{1, 2, 4} {
			pools = append(pools, PoolConfig{Cores: cores, Policy: policy})
		}
	}
	return pools
}

// TestParallelMatchesSerialMatrix is the tentpole's determinism contract
// extended to tenant matrices: a matrix produced by an 8-worker engine
// must serialise byte-identically to the serial reference run.
func TestParallelMatchesSerialMatrix(t *testing.T) {
	tenants, err := FromSuite(5, testWorkload(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []byte {
		eng := NewEngine(workers, nil)
		results, err := eng.RunMatrix(context.Background(), tenants, poolMatrix())
		if err != nil {
			t.Fatal(err)
		}
		cells := make([]any, 0, len(results))
		for _, r := range results {
			cells = append(cells, r.Cell())
		}
		blob, err := json.MarshalIndent(cells, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("parallel matrix differs from serial reference:\nserial:   %.400s\nparallel: %.400s",
			serial, parallel)
	}
}

// TestProfilesMemoizedAcrossCells: a matrix over many pool cells must
// profile each unique tenant exactly once.
func TestProfilesMemoizedAcrossCells(t *testing.T) {
	tenants, err := FromSuite(3, testWorkload(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(4, nil)
	if _, err := eng.RunMatrix(context.Background(), tenants, poolMatrix()); err != nil {
		t.Fatal(err)
	}
	if got := eng.profiles.Misses(); got != uint64(len(tenants)) {
		t.Errorf("profiled %d times, want one per tenant (%d)", got, len(tenants))
	}
	wantHits := uint64(len(tenants) * (len(poolMatrix()) - 1))
	if got := eng.profiles.Hits(); got != wantHits {
		t.Errorf("profile cache hits = %d, want %d", got, wantHits)
	}
}

// TestMoreCoresNeverHurtLeastLag: under the lag-aware policy, growing
// the pool must monotonically relieve aggregate slowdown (the contention
// figure's headline claim).
func TestMoreCoresNeverHurtLeastLag(t *testing.T) {
	tenants, err := FromSuite(6, testWorkload(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(0, nil)
	prev := -1.0
	for _, cores := range []int{1, 2, 4, 8} {
		res, err := eng.RunPool(context.Background(), tenants, PoolConfig{Cores: cores, Policy: PolicyLeastLag})
		if err != nil {
			t.Fatal(err)
		}
		if res.MeanSlowdown <= 0 {
			t.Fatalf("%d cores: non-positive mean slowdown %f", cores, res.MeanSlowdown)
		}
		if prev > 0 && res.MeanSlowdown > prev+1e-9 {
			t.Errorf("%d cores: mean slowdown %f worse than smaller pool %f", cores, res.MeanSlowdown, prev)
		}
		prev = res.MeanSlowdown
		if res.Utilisation <= 0 || res.Utilisation > 1 {
			t.Errorf("%d cores: utilisation %f out of (0, 1]", cores, res.Utilisation)
		}
		if len(res.CoreBusyCycles) != cores {
			t.Errorf("%d cores: busy vector has %d entries", cores, len(res.CoreBusyCycles))
		}
	}
}

// TestContentionCosts: a shared single core must be no faster than
// dedicated cores, and genuinely slower once several tenants pile on.
func TestContentionCosts(t *testing.T) {
	tenants, err := FromSuite(4, testWorkload(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(0, nil)
	ctx := context.Background()

	shared, err := eng.RunPool(ctx, tenants, PoolConfig{Cores: 1, Policy: PolicyLeastLag})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := eng.RunPool(ctx, tenants, PoolConfig{Cores: len(tenants), Policy: PolicyLeastLag})
	if err != nil {
		t.Fatal(err)
	}
	if shared.MeanSlowdown <= wide.MeanSlowdown {
		t.Errorf("4 tenants on 1 core (%.2fX) should be slower than on %d cores (%.2fX)",
			shared.MeanSlowdown, len(tenants), wide.MeanSlowdown)
	}
	// With one core per tenant and greedy assignment, each tenant must be
	// at least as fast as on the shared core, and lag must shrink.
	for i := range wide.Tenants {
		if wide.Tenants[i].WallCycles > shared.Tenants[i].WallCycles {
			t.Errorf("tenant %s: wider pool slower (%d > %d cycles)",
				wide.Tenants[i].Name, wide.Tenants[i].WallCycles, shared.Tenants[i].WallCycles)
		}
	}
}

// Per-policy Pick semantics, the registry, ParseWeights and the replay
// invariants of the three new policies live in sched_test.go.

func TestFromSuite(t *testing.T) {
	if _, err := FromSuite(0, testWorkload(), core.DefaultConfig()); err == nil {
		t.Error("zero tenants must be rejected")
	}
	n := len(workloads.All()) + 2
	tenants, err := FromSuite(n, testWorkload(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tenants) != n {
		t.Fatalf("got %d tenants", len(tenants))
	}
	seen := map[string]bool{}
	for _, tn := range tenants {
		if seen[tn.Name] {
			t.Errorf("duplicate tenant name %q", tn.Name)
		}
		seen[tn.Name] = true
	}
	// The wrapped draws must be distinct instances, not clones.
	if tenants[0].Workload.Seed == tenants[len(workloads.All())].Workload.Seed {
		t.Error("second draw of a benchmark should reseed")
	}
	// Multithreaded benchmarks get the paper's lifeguard.
	for _, tn := range tenants {
		spec, err := workloads.ByName(tn.Benchmark)
		if err != nil {
			t.Fatal(err)
		}
		want := "AddrCheck"
		if spec.MultiThreaded {
			want = "LockSet"
		}
		if tn.Lifeguard != want {
			t.Errorf("%s assigned %s, want %s", tn.Benchmark, tn.Lifeguard, want)
		}
	}
}

func TestInvalidPoolRejected(t *testing.T) {
	eng := NewEngine(1, nil)
	tenants := []Tenant{{Benchmark: "gzip", Workload: testWorkload(), Config: core.DefaultConfig()}}
	if _, err := eng.RunPool(context.Background(), tenants, PoolConfig{Cores: 0}); err == nil {
		t.Error("zero-core pool must be rejected")
	}
	if _, err := eng.RunPool(context.Background(), tenants, PoolConfig{Cores: 2, Policy: "bogus"}); err == nil {
		t.Error("unknown policy must be rejected")
	}
	if _, err := eng.RunPool(context.Background(), nil, PoolConfig{Cores: 1}); err == nil {
		t.Error("empty tenant set must be rejected")
	}
	bad := []Tenant{{Benchmark: "no-such-bench", Workload: testWorkload(), Config: core.DefaultConfig()}}
	if _, err := eng.RunPool(context.Background(), bad, PoolConfig{Cores: 1}); err == nil {
		t.Error("unknown benchmark must be rejected")
	}
}

// TestViolationsSurviveContention: detection is timing-independent — a
// tenant with an injected bug reports the same violations regardless of
// pool pressure.
func TestViolationsSurviveContention(t *testing.T) {
	buggy := Tenant{
		Benchmark: "gzip",
		Workload:  workloads.Config{Scale: testScale, Bug: workloads.BugUseAfterFree},
		Config:    core.DefaultConfig(),
	}
	clean := Tenant{Benchmark: "mcf", Workload: testWorkload(), Config: core.DefaultConfig()}
	eng := NewEngine(0, nil)
	var counts []int
	for _, cores := range []int{1, 4} {
		res, err := eng.RunPool(context.Background(), []Tenant{buggy, clean}, PoolConfig{Cores: cores, Policy: PolicyRoundRobin})
		if err != nil {
			t.Fatal(err)
		}
		if res.Tenants[0].Violations == 0 {
			t.Errorf("%d cores: injected use-after-free not reported", cores)
		}
		counts = append(counts, res.Tenants[0].Violations)
	}
	if counts[0] != counts[1] {
		t.Errorf("violation count changed with pool size: %v", counts)
	}
}

func TestLagHistogram(t *testing.T) {
	var h lagHist
	for lag := uint64(1); lag <= 100; lag++ {
		h.add(lag)
	}
	if h.max != 100 {
		t.Errorf("max = %d", h.max)
	}
	if m := h.mean(); m != 50.5 {
		t.Errorf("mean = %f", m)
	}
	p50, p95 := h.quantile(0.50), h.quantile(0.95)
	// Bucket bounds, not exact order statistics: the medians land in the
	// [32,64) and [64,128)->clamped-to-max buckets.
	if p50 < 50 || p50 > 63 {
		t.Errorf("p50 = %d, want within [50, 63]", p50)
	}
	if p95 < 95 || p95 > 100 {
		t.Errorf("p95 = %d, want within [95, 100]", p95)
	}
	if p50 > p95 {
		t.Errorf("quantiles out of order: p50=%d p95=%d", p50, p95)
	}
	var empty lagHist
	if empty.quantile(0.5) != 0 || empty.mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
}
