// Package tenant simulates a multi-tenant LBA deployment: N concurrent
// monitored applications, each with its own log channel, capture
// configuration and lifeguard, sharing a pool of M lifeguard cores under
// a pluggable scheduler. The paper dedicates spare CMP cores to
// monitoring one application; this package opens the "deployed at scale"
// regime, where monitoring cost and coverage trade off under
// multi-workload contention for the monitoring cores.
//
// The simulation decomposes into two stages:
//
//  1. Profiling (parallel): each tenant runs once, uncontended, through
//     core.ProfileLBA, yielding its log-production timeline — per-record
//     production cycle, compressed size and lifeguard cost, plus syscall
//     containment points. Profiles are memoized by content hash and fan
//     out across goroutines via runner.Map.
//  2. Replay (serial, cheap): the timelines are merged in virtual time
//     and replayed against the shared core pool. Each tenant keeps its
//     own logbuf.Channel (backpressure, drains, lag) while the scheduler
//     assigns records to pool cores; contention surfaces as consumption
//     floors (logbuf.Channel.ProduceAt) that delay drains and fill
//     buffers.
//
// Because stage 1 runs are independent and deterministic, and stage 2 is
// serial, a pool matrix produced by a multi-worker engine is
// byte-identical to the serial reference run — the same contract the
// experiment runner gives figure matrices.
//
// The timeline between the stages is streamed, never materialised: the
// profiling recorder delta-encodes steps into fixed-size varint
// segments (~3 B/step, validating the 32-bit width contract at the
// capture boundary), and every replay path decodes them through a
// bounded window of PoolConfig.StepWindow steps drawn from a recycled
// buffer ring — so peak replay memory is O(tenants x window),
// independent of timeline length, while any window size reproduces the
// materialised replay byte for byte. See docs/architecture.md (From
// []step to segments and windows) and docs/performance.md (Streaming
// bounded-window replay).
//
// # Scheduling
//
// The replay's record-to-core assignment is a pluggable policy behind the
// Scheduler interface: each Pick receives the record being scheduled, a
// live CoreView per pool core (clock, the requesting tenant's
// shadow-cache warmth there, last tenant served), and a live TenantView
// per tenant (weight, tier, lag deadline, channel state, accumulated
// service). Six policies are registered — round-robin and least-lag (the
// baselines), deadline (bound each tenant's lag tail with an exact
// channel-aware projection), wfq (weighted fair queueing over consumed
// log bytes), priority (strict SLA tiers with WFQ inside a tier) and
// affinity (warmth-aware least-lag with hysteresis) — and Register
// accepts experimental ones. See docs/architecture.md for the full
// scheduler contract.
//
// # Shadow-cache warmth and migration costs
//
// Lifeguard cores are only fast on a tenant whose shadow working set is
// cache-resident, so each pool core tracks a bounded per-tenant warmth
// (half-life decay under other tenants' service;
// PoolConfig.WarmthHalfLifeBytes) and serving a record on a cold core
// charges PoolConfig.MigrationPenalty scaled by the missing warmth. A
// zero penalty disables the model without changing any policy's timing;
// per-tenant migration counts and cold-serve cycles surface in
// TenantResult and the lba-runner/v1 artifact once it is on. On churned
// replays warmth additionally decays across a core's idle wall-clock
// gaps (PoolConfig.WarmthIdleHalfLifeCycles) — real caches cool while a
// core sits vacant between departures and arrivals — so only fixed-set
// warmth is a pure function of the record-to-core assignment.
//
// # Dynamic tenant churn
//
// Real deployments see tenants arrive and depart rather than a fixed
// population sized for steady state. A tenant description may therefore
// carry an active window (Tenant.ArriveAt/DepartAfter, laid out in bulk
// by ApplyChurn): the replay shifts the tenant's timeline to its
// arrival, schedulers see only live tenants (TenantView.Absent), and a
// departing tenant stops producing at its departure cycle, drains its
// channel, then releases it — evicting its shadow-cache warmth across
// the vacancy. Results gain active-window accounting (arrival, release
// cycle, active span) and the pool-level peak channel concurrency, the
// quantity churn-aware provisioning needs. With every window zero the
// replay is byte-identical to the fixed-set path (pinned against
// pre-churn golden artifacts).
//
// # Admission control
//
// On top of the replay, Engine.PlanAdmission answers the serving-capacity
// question: the maximum tenant count a pool can serve while every
// tenant's contention factor (wall cycles over its own dedicated-core
// monitored run) stays within an SLO. PlanAdmissionQuery generalises it
// to churned populations, repeated-seed confidence bands, and a
// monotone-envelope bisection that probes O(log N) tenant counts with a
// verified fallback to the exhaustive scan when the probed envelope is
// non-monotone. Points are exported in the lba-runner/v1 JSON artifact's
// admission (and churn) sections.
//
// # Performance
//
// The replay is the package's hot path — sweeps and admission searches
// replay millions of records per pool cell — and ships two dispatch
// paths pinned byte-identical to each other (ReplayPool's Dispatch
// argument). DispatchBatched, the default and what Engine.RunPool uses,
// groups consecutive same-tenant records into runs so schedulers that
// implement BatchPicker (all six built-ins) amortise their ranking work
// per run instead of per record, and draws its working memory from a
// pooled arena so steady-state replays allocate only their results
// (logbuf.Channel.Reset is the channel-reuse hook). DispatchPerRecord
// is the pre-optimization reference kept as the differential oracle and
// benchmark baseline. BenchmarkReplay and `lbabench -bench replay`
// measure the pair; docs/performance.md documents the schema, profiling
// recipes and the measured ≥2x records/sec gap.
//
// DispatchSharded (PoolConfig.Shards, `-shards` on the commands) is the
// multi-core half of the fast path: the pool splits into K statically-
// partitioned sub-pools — contiguous core groups with an LPT-balanced
// tenant assignment — each replayed with the batched path on its own
// goroutine and merged deterministically. One shard is byte-identical to
// the global batched replay; K >= 2 is a deliberately coarser scheduling
// point (each sub-pool's scheduler sees only its own tenants and cores —
// the paper's dedicated-core regime), pinned parallel == serial rather
// than sharded == global. See internal/tenant/shard.go for the full
// contract.
package tenant

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workloads"
)

// Tenant describes one monitored application in the shared system. Like
// runner.Job it is pure data, so it can be hashed, compared and
// serialised; the profile cache keys on exactly these fields.
type Tenant struct {
	// Name labels the tenant in results; it defaults to the benchmark
	// name, suffixed when FromSuite draws the same benchmark twice.
	Name      string           `json:"name"`
	Benchmark string           `json:"benchmark"`
	Lifeguard string           `json:"lifeguard"`
	Workload  workloads.Config `json:"workload"`
	// Config is the tenant's own design point: capture filtering,
	// compression, and its private channel. ParallelLifeguards and
	// RewindMode are not supported under pooling.
	Config core.Config `json:"config"`

	// ArriveAt is the virtual cycle at which the tenant arrives: its whole
	// timeline is shifted by ArriveAt, it holds no channel and is invisible
	// to schedulers before then. 0 (the default) arrives at the start.
	ArriveAt uint64 `json:"arrive_at,omitempty"`
	// DepartAfter is the absolute virtual cycle after which the tenant
	// stops producing: records past it are never produced, the tenant
	// drains its channel, then releases it (and its shadow-cache warmth).
	// 0 means the tenant never departs. A non-zero DepartAfter at or
	// before ArriveAt is rejected (see ApplyChurn for a generator that
	// always lays out valid windows). Both fields are ignored by the
	// profiling stage — a tenant's uncontended timeline does not depend on
	// when it arrives — so churn variants of one tenant share a profile.
	DepartAfter uint64 `json:"depart_after,omitempty"`
}

// withDefaults normalises a tenant description.
func (t Tenant) withDefaults() Tenant {
	if t.Name == "" {
		t.Name = t.Benchmark
	}
	if t.Lifeguard == "" {
		t.Lifeguard = DefaultLifeguard(t.Benchmark)
	}
	return t
}

// DefaultLifeguard returns the lifeguard the paper evaluates on a
// benchmark: LockSet for the multithreaded pair, AddrCheck elsewhere.
func DefaultLifeguard(benchmark string) string {
	if spec, err := workloads.ByName(benchmark); err == nil && spec.MultiThreaded {
		return "LockSet"
	}
	return "AddrCheck"
}

// FromSuite returns n tenants drawn round-robin from the nine-benchmark
// suite, each with the lifeguard the paper evaluates on it and the given
// workload scale and design point. Repeated draws of the same benchmark
// get distinct names (and seeds offset by the repeat count, so the
// system serves genuinely distinct instances).
func FromSuite(n int, wcfg workloads.Config, ccfg core.Config) ([]Tenant, error) {
	if n <= 0 {
		return nil, fmt.Errorf("tenant: need at least one tenant, got %d", n)
	}
	specs := workloads.All()
	tenants := make([]Tenant, 0, n)
	for i := 0; i < n; i++ {
		spec := specs[i%len(specs)]
		t := Tenant{
			Name:      spec.Name,
			Benchmark: spec.Name,
			Lifeguard: DefaultLifeguard(spec.Name),
			Workload:  wcfg,
			Config:    ccfg,
		}
		if round := i / len(specs); round > 0 {
			t.Name = fmt.Sprintf("%s#%d", spec.Name, round+1)
			t.Workload.Seed = wcfg.Seed + uint64(round)
		}
		tenants = append(tenants, t)
	}
	return tenants, nil
}
