package tenant

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// This file is the bounded-window timeline pipeline. Profiling no longer
// materialises a tenant's full []step in memory: the recorder packs steps
// into fixed-size delta-encoded segments (VPC-style — varint cycle deltas
// and small varint bits/cost fields), the memo layer caches those compact
// segments, and replay consumes them through a StepSource iterator into a
// small ring of decoded windows recycled as tenants retire them. Replay
// timing is bit-for-bit identical to the materialised path: the encoding
// is lossless and the merge still sees exactly the same step sequence.

// Width contract of the step encoding. A record step carries its
// compressed size and lifeguard cost as uint32 fields; bits additionally
// shares its field with the drain sentinel. The capture boundary
// (recorder.Record) and the synthetic-timeline constructor reject values
// outside these bounds instead of silently narrowing them — a record
// whose size reached drainMark would replay as a syscall drain.
const (
	// maxStepBits is the largest compressed record size one step can
	// carry: drainMark is reserved for syscall-drain steps.
	maxStepBits = uint64(drainMark) - 1
	// maxStepCost is the largest per-record lifeguard cost one step can
	// carry.
	maxStepCost = uint64(^uint32(0))
)

// segmentSteps is the recorder's segment granularity: how many steps one
// encoded segment holds. Segments are flushed to exact-size buffers, so
// the only over-allocation is the recorder's single in-progress buffer.
const segmentSteps = 4096

// DefaultStepWindow is the decoded-window size replay reads timelines
// through when PoolConfig.StepWindow is zero: 1024 steps is 16 KiB of
// decoded steps per live tenant, comfortably L2-resident, and large
// enough that refill cost is noise (see docs/performance.md).
const DefaultStepWindow = 1024

// StepSource streams a timeline's steps in order. Next fills dst with as
// many decoded steps as fit and returns how many it wrote; 0 means the
// source is exhausted (a source never returns 0 before exhaustion, but
// may return short, non-zero counts at segment boundaries). Sources are
// single-use and not safe for concurrent use; open a fresh one per
// traversal.
type StepSource interface {
	Next(dst []step) int
}

// Timeline is an immutable step sequence: the profile-side representation
// replay iterates via Open. Implementations must be safe for concurrent
// Open calls — profiles are shared through the memo cache and replayed
// concurrently.
type Timeline interface {
	// Len reports the total step count (records + drain points).
	Len() int
	// Open starts a fresh traversal from the first step.
	Open() StepSource
}

// sliceTimeline is the materialised []step timeline — the pre-streaming
// representation, kept as the differential oracle the encoded path is
// pinned byte-identical against (and as the cheap way for tests to build
// hand-written timelines).
type sliceTimeline []step

func (t sliceTimeline) Len() int { return len(t) }

func (t sliceTimeline) Open() StepSource { s := sliceSource(t); return &s }

type sliceSource []step

func (s *sliceSource) Next(dst []step) int {
	n := copy(dst, *s)
	*s = (*s)[n:]
	return n
}

// segTimeline is the production timeline: delta-encoded step segments.
// Encoding (per step): varint(cycle - previous cycle), then varint(0) for
// a drain step or varint(bits+1) followed by varint(cost) for a record
// step. Cycle deltas chain across segments (segment N's first delta is
// relative to segment N-1's last cycle); a step never straddles a segment
// boundary. Typical profiled timelines encode to ~3 bytes/step against 16
// for the materialised form.
type segTimeline struct {
	segs [][]byte
	n    int
}

func (t *segTimeline) Len() int { return t.n }

func (t *segTimeline) Open() StepSource { return &segSource{segs: t.segs} }

// EncodedBytes reports the resident encoded size of the timeline.
func (t *segTimeline) EncodedBytes() int {
	total := 0
	for _, seg := range t.segs {
		total += len(seg)
	}
	return total
}

// segSource decodes a segTimeline in order. Decode errors panic: segments
// are produced only by timelineEncoder in this package, so a malformed
// byte is a corrupted internal invariant, not an input error.
type segSource struct {
	segs [][]byte
	si   int    // current segment
	off  int    // byte offset inside it
	prev uint64 // last decoded cycle (delta base)
}

func (s *segSource) Next(dst []step) int {
	k := 0
	for k < len(dst) {
		for s.si < len(s.segs) && s.off >= len(s.segs[s.si]) {
			s.si++
			s.off = 0
		}
		if s.si >= len(s.segs) {
			break
		}
		seg := s.segs[s.si]
		delta, w := binary.Uvarint(seg[s.off:])
		if w <= 0 {
			panic("tenant: corrupt step segment (cycle delta)")
		}
		s.off += w
		s.prev += delta
		code, w2 := binary.Uvarint(seg[s.off:])
		if w2 <= 0 {
			panic("tenant: corrupt step segment (bits code)")
		}
		s.off += w2
		st := step{cycle: s.prev, bits: drainMark}
		if code != 0 {
			cost, w3 := binary.Uvarint(seg[s.off:])
			if w3 <= 0 {
				panic("tenant: corrupt step segment (cost)")
			}
			s.off += w3
			st.bits = uint32(code - 1)
			st.cost = uint32(cost)
		}
		dst[k] = st
		k++
	}
	return k
}

// timelineEncoder packs steps into the segment encoding incrementally.
// The recorder feeds it from the TransportObserver callbacks, so profiling
// holds one in-progress segment buffer plus the finished exact-size
// segments — never the decoded timeline.
type timelineEncoder struct {
	segSteps int // steps per segment; <= 0 selects segmentSteps
	segs     [][]byte
	buf      []byte
	inSeg    int
	n        int
	prev     uint64 // last appended cycle (delta base, chained across segments)
}

func (e *timelineEncoder) append(s step) error {
	if s.cycle < e.prev {
		return fmt.Errorf("tenant: step at cycle %d precedes its predecessor at %d; timelines are non-decreasing by the application-clock contract", s.cycle, e.prev)
	}
	e.buf = binary.AppendUvarint(e.buf, s.cycle-e.prev)
	if s.bits == drainMark {
		e.buf = binary.AppendUvarint(e.buf, 0)
	} else {
		e.buf = binary.AppendUvarint(e.buf, uint64(s.bits)+1)
		e.buf = binary.AppendUvarint(e.buf, uint64(s.cost))
	}
	e.prev = s.cycle
	e.inSeg++
	e.n++
	limit := e.segSteps
	if limit <= 0 {
		limit = segmentSteps
	}
	if e.inSeg >= limit {
		e.flush()
	}
	return nil
}

func (e *timelineEncoder) flush() {
	if e.inSeg == 0 {
		return
	}
	seg := make([]byte, len(e.buf))
	copy(seg, e.buf)
	e.segs = append(e.segs, seg)
	e.buf = e.buf[:0]
	e.inSeg = 0
}

func (e *timelineEncoder) finish() *segTimeline {
	e.flush()
	return &segTimeline{segs: e.segs, n: e.n}
}

// encodeSteps round-trips a materialised timeline into the segment
// encoding — the test tier's bridge between the slice oracle and the
// streaming path (segSteps <= 0 selects the production segment size).
func encodeSteps(steps []step, segSteps int) (Timeline, error) {
	enc := timelineEncoder{segSteps: segSteps}
	for _, s := range steps {
		if s.bits != drainMark && uint64(s.bits) > maxStepBits {
			return nil, fmt.Errorf("tenant: step bits %d exceed the width contract (max %d)", s.bits, maxStepBits)
		}
		if err := enc.append(s); err != nil {
			return nil, err
		}
	}
	return enc.finish(), nil
}

// materialise decodes a timeline into one contiguous []step — the test
// tier's bridge back to the pre-streaming representation. Replay code
// never calls it.
func materialise(tl Timeline) []step {
	if tl == nil {
		return nil
	}
	out := make([]step, 0, tl.Len())
	var win [256]step
	src := tl.Open()
	for {
		n := src.Next(win[:])
		if n == 0 {
			return out
		}
		out = append(out, win[:n]...)
	}
}

// genTimeline is a generator-backed timeline: steps are produced on the
// fly from a pure function of the index, so a 100M-step synthetic tenant
// occupies O(1) memory. gen must be deterministic — every Open must see
// the same sequence — and its output is width-validated once at
// construction (NewSyntheticProfile).
type genTimeline struct {
	n   int
	gen func(i int) SyntheticStep
}

func (t *genTimeline) Len() int { return t.n }

func (t *genTimeline) Open() StepSource { return &genSource{t: t} }

type genSource struct {
	t *genTimeline
	i int
}

func (s *genSource) Next(dst []step) int {
	k := 0
	for k < len(dst) && s.i < s.t.n {
		g := s.t.gen(s.i)
		st := step{cycle: g.Cycle, bits: drainMark}
		if !g.Drain {
			st.bits = uint32(g.Bits)
			st.cost = uint32(g.Cost)
		}
		dst[k] = st
		s.i++
		k++
	}
	return k
}

// stepCursor is a tenant's windowed read position in its timeline: replay
// looks at head(), advances, and the cursor refills its window from the
// source as it drains. The churn window (arrive/depart) truncates the
// stream exactly where churnLimit would have cut the materialised slice:
// the first step whose shifted cycle passes the departure ends the
// stream. A cursor is opened over a caller-supplied window buffer (drawn
// from the replay's windowRing) and must not be copied once opened.
type stepCursor struct {
	src     StepSource
	seg     segSource // inline storage for segment timelines (avoids a per-open allocation)
	win     []step
	pos, n  int
	srcDone bool
	arrive  uint64
	depart  uint64 // 0 = never departs
}

// open starts the cursor at the timeline's first step. A nil timeline is
// a valid empty timeline (profiles built by tests may omit it).
func (c *stepCursor) open(tl Timeline, win []step, arrive, depart uint64) {
	c.win = win
	c.pos, c.n = 0, 0
	c.srcDone = false
	c.arrive, c.depart = arrive, depart
	switch t := tl.(type) {
	case nil:
		c.src = nil
		c.srcDone = true
	case *segTimeline:
		c.seg = segSource{segs: t.segs}
		c.src = &c.seg
	default:
		c.src = tl.Open()
	}
	c.fill()
}

// fill refills the window from the source and applies the churn
// truncation: once any decoded step's shifted cycle passes the departure,
// the stream ends at the first such step (steps are in non-decreasing
// cycle order, so the active window is a prefix — the same prefix
// churnLimit selects).
func (c *stepCursor) fill() {
	if c.srcDone {
		c.pos, c.n = 0, 0
		return
	}
	c.pos = 0
	c.n = c.src.Next(c.win)
	if c.n == 0 {
		c.srcDone = true
		return
	}
	if c.depart != 0 && c.win[c.n-1].cycle+c.arrive > c.depart {
		c.n = sort.Search(c.n, func(i int) bool { return c.win[i].cycle+c.arrive > c.depart })
		c.srcDone = true
	}
}

func (c *stepCursor) done() bool { return c.pos >= c.n }

// head returns the current step; callers must check done() first.
func (c *stepCursor) head() step { return c.win[c.pos] }

func (c *stepCursor) advance() {
	c.pos++
	if c.pos >= c.n && !c.srcDone {
		c.fill()
	}
}

// close releases the cursor's window back to the ring and drops its
// source, so neither the arena nor a retired tenant retains decoded state.
func (c *stepCursor) close(ring *windowRing) {
	if c.win != nil {
		ring.put(c.win)
		c.win = nil
	}
	c.src = nil
	c.seg = segSource{}
	c.srcDone = true
}

// windowRing recycles decoded-step window buffers within a replay and,
// held in the arena, across replays: retiring tenants return their
// windows for later scratch use, and finish() returns the rest, so
// steady-state replays allocate no window memory at all. Buffers of a
// stale size (the pool's StepWindow changed between replays) are dropped
// rather than reused.
type windowRing struct {
	size int
	free [][]step
}

func (r *windowRing) reset(size int) {
	if r.size != size {
		r.free = r.free[:0]
		r.size = size
	}
}

func (r *windowRing) get() []step {
	if n := len(r.free); n > 0 {
		w := r.free[n-1]
		r.free[n-1] = nil
		r.free = r.free[:n-1]
		return w
	}
	return make([]step, r.size)
}

func (r *windowRing) put(w []step) {
	if len(w) == r.size {
		r.free = append(r.free, w)
	}
}
