package tenant

import (
	"context"
	"encoding/json"
	"reflect"
	"runtime/debug"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// dispatchSuiteProfiles builds n real suite tenants (small scale: the
// differential test replays them dozens of times) and profiles them, with
// optional churn windows overlaid the way Engine.RunPool does — on
// shallow copies, since memoized profiles are shared and window-free.
func dispatchSuiteProfiles(t *testing.T, n int, churn Churn) []*Profile {
	t.Helper()
	eng := NewEngine(0, nil)
	set, err := FromSuite(n, workloads.Config{Scale: 20_000}, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	set, err = ApplyChurn(set, churn)
	if err != nil {
		t.Fatal(err)
	}
	profiles := make([]*Profile, n)
	for i, tn := range set {
		p, err := eng.Profile(context.Background(), tn)
		if err != nil {
			t.Fatal(err)
		}
		if a, d := tn.ArriveAt, tn.DepartAfter; a != 0 || d != 0 {
			cp := *p
			cp.Tenant.ArriveAt, cp.Tenant.DepartAfter = a, d
			p = &cp
		}
		profiles[i] = p
	}
	return profiles
}

// diffDispatch replays the same inputs down both dispatch paths and
// fails unless the results are deep-equal — the contract DispatchBatched
// is built on: batching, incremental ranks and buffer reuse are pure
// speedups, never visible in any output field.
func diffDispatch(t *testing.T, label string, profiles []*Profile, pool PoolConfig) {
	t.Helper()
	batched, err := ReplayPool(profiles, pool, DispatchBatched)
	if err != nil {
		t.Fatalf("%s: batched replay failed: %v", label, err)
	}
	oracle, err := ReplayPool(profiles, pool, DispatchPerRecord)
	if err != nil {
		t.Fatalf("%s: per-record replay failed: %v", label, err)
	}
	if !reflect.DeepEqual(batched, oracle) {
		a, _ := json.Marshal(batched)
		b, _ := json.Marshal(oracle)
		t.Errorf("%s: batched and per-record results diverge\nbatched:    %s\nper-record: %s", label, a, b)
	}
}

// TestBatchedDispatchMatchesPerRecord pins the batched fast path to the
// per-record oracle, deep-equal on the full PoolResult, for every
// registered policy across: the real benchmark suite (fixed-set and
// churned, migration model off and on, 1-3 cores, cycled weights and
// explicit tiers), and the synthetic fuzz-corpus timelines — including
// the churn seeds, whose arrivals force mid-run BeginRun re-snapshots,
// and the drain-heavy seed, whose drains interleave with backpressure.
func TestBatchedDispatchMatchesPerRecord(t *testing.T) {
	fixed := dispatchSuiteProfiles(t, 4, Churn{})
	churned := dispatchSuiteProfiles(t, 4, Churn{Rate: 0.5})

	suites := []struct {
		name     string
		profiles []*Profile
	}{
		{"suite", fixed},
		{"suite-churned", churned},
		{"synthetic-staggered", syntheticProfiles(churnSeedStaggered)},
		{"synthetic-mass-departure", syntheticProfiles(churnSeedMassDeparture)},
		{"synthetic-rearrive", syntheticProfiles(churnSeedRearrive)},
		{"synthetic-drain-heavy", syntheticProfiles([]byte("pppppppppppppppppppppppppppppppp"))},
		{"synthetic-dense", syntheticProfiles([]byte("0123456789abcdefghijklmnopqrstuvwxyz"))},
	}
	for _, s := range suites {
		s := s
		t.Run(s.name, func(t *testing.T) {
			for _, policy := range Policies() {
				for _, cores := range []int{1, 2, 3} {
					for _, penalty := range []uint64{0, 320} {
						pool := PoolConfig{
							Cores:            cores,
							Policy:           policy,
							Weights:          []float64{2, 1},
							Tiers:            []int{1, 0, 1},
							DeadlineCycles:   5_000,
							MigrationPenalty: penalty,
						}
						diffDispatch(t, policy, s.profiles, pool)
					}
				}
			}
		})
	}
}

// TestBatchedReplaySteadyStateAllocs is the allocation regression guard
// for the tentpole: once the arena pool is warm, a batched replay of the
// real suite must stay within a small fixed allocation budget (results
// and their per-tenant slices; measured 15-20) regardless of record
// count — the per-record oracle path allocates its working state fresh
// every replay and sits far above this ceiling by design. GC is paused
// so a collection cannot empty the arena sync.Pool mid-measurement.
func TestBatchedReplaySteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates on its own account")
	}
	profiles := dispatchSuiteProfiles(t, 4, Churn{})
	pool := PoolConfig{Cores: 2, Policy: PolicyWFQ, MigrationPenalty: 320}

	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	// Warm the arena pool and the warmth factor memo.
	if _, err := ReplayPool(profiles, pool, DispatchBatched); err != nil {
		t.Fatal(err)
	}
	const ceiling = 30.0
	got := testing.AllocsPerRun(5, func() {
		if _, err := ReplayPool(profiles, pool, DispatchBatched); err != nil {
			t.Fatal(err)
		}
	})
	if got > ceiling {
		t.Errorf("steady-state batched replay allocates %.0f objects/run, ceiling %v", got, ceiling)
	}
}
