package tenant

import (
	"context"
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/core"
)

func TestPlanAdmissionRejectsBadInputs(t *testing.T) {
	eng := NewEngine(1, nil)
	ctx := context.Background()
	pool := PoolConfig{Cores: 1}
	if _, err := eng.PlanAdmission(ctx, testWorkload(), core.DefaultConfig(), pool, []float64{2}, 0); err == nil {
		t.Error("maxTenants 0 must be rejected")
	}
	if _, err := eng.PlanAdmission(ctx, testWorkload(), core.DefaultConfig(), pool, nil, 3); err == nil {
		t.Error("empty SLO list must be rejected")
	}
	if _, err := eng.PlanAdmission(ctx, testWorkload(), core.DefaultConfig(), pool, []float64{0.9}, 3); err == nil {
		t.Error("sub-1 slowdown SLO must be rejected")
	}
	for _, q := range []AdmissionQuery{
		{Pool: pool, SLOs: []float64{2}, MaxTenants: 2, Seeds: -1},
		{Pool: pool, SLOs: []float64{2}, MaxTenants: 2, Churn: Churn{Rate: -1}},
	} {
		if _, err := eng.PlanAdmissionQuery(ctx, testWorkload(), core.DefaultConfig(), q); err == nil {
			t.Errorf("query %+v must be rejected", q)
		}
	}
}

// TestAdmissionSeedStride pins the replication-stride bugfix: Seeds > 1
// with an unset SeedStride used to collapse every replica onto the base
// seed and report a zero-width confidence band as if the seeds agreed.
// The zero value now selects the package default, and an explicit stride
// too small to keep replica populations disjoint is rejected up front.
func TestAdmissionSeedStride(t *testing.T) {
	if got := (AdmissionQuery{}).seedStride(); got != SeedStride {
		t.Errorf("zero SeedStride resolves to %d, want the package default %d", got, SeedStride)
	}
	if got := (AdmissionQuery{SeedStride: 37}).seedStride(); got != 37 {
		t.Errorf("explicit SeedStride resolves to %d, want 37", got)
	}

	eng := NewEngine(1, nil)
	ctx := context.Background()
	pool := PoolConfig{Cores: 1}
	// 20 tenants draw the nine-benchmark suite three times, so per-tenant
	// seeds span offsets 0-2: strides 1 and 2 overlap the replicas'
	// populations and must be rejected at the entry point, before any
	// replay runs.
	for _, stride := range []uint64{1, 2} {
		q := AdmissionQuery{Pool: pool, SLOs: []float64{2}, MaxTenants: 20, Seeds: 2, SeedStride: stride}
		if _, err := eng.PlanAdmissionQuery(ctx, testWorkload(), core.DefaultConfig(), q); err == nil {
			t.Errorf("stride %d with 20 tenants must be rejected: replica populations overlap", stride)
		}
	}
	// Stride 3 clears the offset span, and a non-replicated query never
	// collides regardless of its stride; validate directly to keep the
	// accepted side replay-free.
	ok := AdmissionQuery{Pool: pool, SLOs: []float64{2}, MaxTenants: 20, Seeds: 2, SeedStride: 3}
	if err := ok.validate(); err != nil {
		t.Errorf("stride 3 with 20 tenants should validate: %v", err)
	}
	single := AdmissionQuery{Pool: pool, SLOs: []float64{2}, MaxTenants: 20, SeedStride: 1}
	if err := single.validate(); err != nil {
		t.Errorf("single-seed query should accept any stride: %v", err)
	}
}

func TestPlanAdmission(t *testing.T) {
	eng := NewEngine(0, nil)
	pool := PoolConfig{Cores: 2, Policy: PolicyLeastLag}
	slos := []float64{1.05, 2.0, 1e9}
	const maxN = 5
	points, err := eng.PlanAdmission(context.Background(), testWorkload(), core.DefaultConfig(), pool, slos, maxN)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(slos) {
		t.Fatalf("got %d points for %d SLOs", len(points), len(slos))
	}
	for i, p := range points {
		if p.SLO != slos[i] {
			t.Errorf("point %d answers SLO %g, want %g", i, p.SLO, slos[i])
		}
		if p.Cores != pool.Cores || p.Policy != PolicyLeastLag {
			t.Errorf("point %d misidentifies its pool: %+v", i, p)
		}
		if p.Searched != maxN {
			t.Errorf("point %d searched %d, want %d", i, p.Searched, maxN)
		}
		// A single tenant on any pool has contention factor exactly 1.0
		// (the decomposition contract), so every SLO admits at least one.
		if p.MaxTenants < 1 || p.MaxTenants > maxN {
			t.Errorf("point %d admits %d tenants, outside [1, %d]", i, p.MaxTenants, maxN)
		}
		if p.MaxTenants > 0 && p.ContentionAtMax > p.SLO {
			t.Errorf("point %d admits %d tenants at %fX contention, violating its own SLO %g",
				i, p.MaxTenants, p.ContentionAtMax, p.SLO)
		}
		// A looser SLO can never admit fewer tenants.
		if i > 0 && p.MaxTenants < points[i-1].MaxTenants {
			t.Errorf("SLO %g admits %d tenants but tighter SLO %g admitted %d",
				p.SLO, p.MaxTenants, points[i-1].SLO, points[i-1].MaxTenants)
		}
	}
	// An absurdly loose SLO never saturates within the scan.
	if last := points[len(points)-1]; last.MaxTenants != maxN {
		t.Errorf("1e9X SLO admitted %d tenants, want the full scan %d", last.MaxTenants, maxN)
	}

	// The search must reuse profiles: tenant k is shared by every
	// population containing it, so exactly maxN unique profiles run (the
	// loosest SLO's first probe evaluates the full population).
	if got := eng.profiles.Misses(); got != maxN {
		t.Errorf("admission search profiled %d times, want %d (one per unique tenant)", got, maxN)
	}
	// Single-seed searches report a degenerate band.
	for _, p := range points {
		if p.Seeds != 1 || p.TenantsLo != p.MaxTenants || p.TenantsHi != p.MaxTenants {
			t.Errorf("single-seed point band inconsistent: %+v", p)
		}
		if p.Probes < 1 {
			t.Errorf("point spent %d probes", p.Probes)
		}
	}
}

func TestAdmissionPointRow(t *testing.T) {
	p := AdmissionPoint{SLO: 1.5, Cores: 4, Policy: PolicyWFQ, MaxTenants: 6, ContentionAtMax: 1.4, Searched: 8,
		Seeds: 1, TenantsLo: 6, TenantsHi: 6, Probes: 4}
	row := p.Row()
	if row.SLOContentionX != 1.5 || row.Cores != 4 || row.Policy != PolicyWFQ ||
		row.MaxTenants != 6 || row.ContentionAtMax != 1.4 || row.SearchedTenants != 8 {
		t.Errorf("Row() lost fields: %+v", row)
	}
	// A single-seed fixed-set point must keep the linear-scan-era JSON
	// schema: no band, seed, churn or fallback fields.
	if row.Seeds != 0 || row.TenantsLo != 0 || row.TenantsHi != 0 || row.ChurnRate != 0 || row.FallbackScan {
		t.Errorf("single-seed Row() leaked band fields: %+v", row)
	}
	p.Seeds, p.TenantsLo, p.TenantsHi = 3, 4, 6
	p.FallbackScan, p.ChurnRate = true, 2
	row = p.Row()
	if row.Seeds != 3 || row.TenantsLo != 4 || row.TenantsHi != 6 || !row.FallbackScan || row.ChurnRate != 2 {
		t.Errorf("banded Row() lost fields: %+v", row)
	}
}

// envOf wraps a value table as a probe-counting envelope.
func envOf(vals []float64) *envelope {
	return &envelope{
		vals: map[int]float64{},
		eval: func(n int) (float64, error) { return vals[n-1], nil },
	}
}

// linearMax is the reference answer: the largest n anywhere in [1, maxN]
// meeting the SLO, by exhaustive scan.
func linearMax(vals []float64, maxN int, slo float64) searchAnswer {
	var ans searchAnswer
	for n := 1; n <= maxN; n++ {
		if vals[n-1] <= slo {
			ans = searchAnswer{maxTenants: n, contention: vals[n-1]}
		}
	}
	return ans
}

// TestPropertyBisectionMatchesLinearOnMonotone: on randomly generated
// monotone envelopes the bisection must return exactly the linear scan's
// answer for every SLO, never trigger the fallback, and spend
// logarithmically few probes — the reason it replaced the scan.
func TestPropertyBisectionMatchesLinearOnMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		maxN := 1 + rng.Intn(1000)
		vals := make([]float64, maxN)
		v := 1.0
		for i := range vals {
			v += rng.Float64() * 0.3
			vals[i] = v
		}
		slos := make([]float64, 1+rng.Intn(4))
		for i := range slos {
			slos[i] = 1 + rng.Float64()*float64(maxN)*0.3
		}
		env := envOf(vals)
		answers, fallback, err := admissionSearch(env, maxN, slos)
		if err != nil {
			t.Fatal(err)
		}
		if fallback {
			t.Fatalf("trial %d: fallback on a monotone envelope", trial)
		}
		for i, slo := range slos {
			if want := linearMax(vals, maxN, slo); answers[i] != want {
				t.Fatalf("trial %d: SLO %g: bisection %+v != linear %+v (maxN %d)",
					trial, slo, answers[i], want, maxN)
			}
		}
		// ~log2(maxN)+1 probes per SLO, shared across SLOs via the memo.
		bound := len(slos) * (bits.Len(uint(maxN)) + 1)
		if len(env.vals) > bound {
			t.Fatalf("trial %d: %d probes over %d SLOs on maxN %d (bound %d) — not a bisection",
				trial, len(env.vals), len(slos), maxN, bound)
		}
	}
}

// TestPropertyAdversarialEnvelopeFallsBack: a crafted non-monotone
// envelope whose inversion the bisection's own probes expose must trigger
// the verified fallback — reported on the point — and still return the
// linear scan's answer.
func TestPropertyAdversarialEnvelopeFallsBack(t *testing.T) {
	// Bisection at SLO 1.5 probes n=8 (1.6, fail), n=4 (1.9, fail), n=2
	// (1.2, pass), n=3 (1.4, pass) and would answer 3 — but the sampled
	// pair f(4)=1.9 > f(8)=1.6 proves the envelope non-monotone, so the
	// fallback scan must run and find the true linear answer 6.
	vals := []float64{1.2, 1.2, 1.4, 1.9, 1.3, 1.45, 1.7, 1.6}
	env := envOf(vals)
	answers, fallback, err := admissionSearch(env, len(vals), []float64{1.5})
	if err != nil {
		t.Fatal(err)
	}
	if !fallback {
		t.Fatal("adversarial envelope did not trigger the fallback scan")
	}
	if want := linearMax(vals, len(vals), 1.5); answers[0] != want {
		t.Errorf("fallback answer %+v, want the linear scan's %+v", answers[0], want)
	}
	if len(env.vals) != len(vals) {
		t.Errorf("fallback evaluated %d points, want the full scan %d", len(env.vals), len(vals))
	}

	// End to end: the fallback must be reported on the emitted point.
	pt := AdmissionPoint{FallbackScan: true}
	if !pt.Row().FallbackScan {
		t.Error("fallback flag lost in the JSON row")
	}
}

// TestPropertyBisectionMatchesLinearScanAllPolicies is the differential
// contract on the real suite: for every registered policy, the
// bisection-based planner must report exactly the answers an exhaustive
// linear scan over the same populations computes. Where the measured
// envelope is monotone the bisection alone guarantees it; where it is
// not, the point must carry the fallback flag (and the fallback *is* the
// scan).
func TestPropertyBisectionMatchesLinearScanAllPolicies(t *testing.T) {
	eng := NewEngine(0, nil)
	ctx := context.Background()
	slos := []float64{1.05, 1.5, 3.0, 1e9}
	const maxN = 5
	for _, policy := range Policies() {
		pool := PoolConfig{Cores: 2, Policy: policy}
		// Reference: the exhaustive scan (all profiles shared with the
		// planner through the engine cache).
		worst := make([]float64, maxN)
		for n := 1; n <= maxN; n++ {
			set, err := FromSuite(n, testWorkload(), core.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			res, err := eng.RunPool(ctx, set, pool)
			if err != nil {
				t.Fatal(err)
			}
			worst[n-1] = res.MaxContentionX
		}
		monotone := true
		for n := 1; n < maxN; n++ {
			if worst[n] < worst[n-1] {
				monotone = false
			}
		}

		points, err := eng.PlanAdmission(ctx, testWorkload(), core.DefaultConfig(), pool, slos, maxN)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range points {
			want := linearMax(worst, maxN, slos[i])
			if p.MaxTenants != want.maxTenants || p.ContentionAtMax != want.contention {
				t.Errorf("%s: SLO %g: bisection admits %d at %g, linear scan %d at %g",
					policy, slos[i], p.MaxTenants, p.ContentionAtMax, want.maxTenants, want.contention)
			}
			if monotone && p.FallbackScan {
				t.Errorf("%s: fallback triggered on a monotone measured envelope", policy)
			}
		}
	}
}

// TestPlanAdmissionSeeds: repeated-seed replication reports a band whose
// headline answer is the conservative minimum.
func TestPlanAdmissionSeeds(t *testing.T) {
	eng := NewEngine(0, nil)
	points, err := eng.PlanAdmissionQuery(context.Background(), testWorkload(), core.DefaultConfig(), AdmissionQuery{
		Pool:       PoolConfig{Cores: 2},
		SLOs:       []float64{2.0},
		MaxTenants: 3,
		Seeds:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := points[0]
	if p.Seeds != 3 {
		t.Errorf("point reports %d seeds, want 3", p.Seeds)
	}
	if p.TenantsLo > p.TenantsHi {
		t.Errorf("band inverted: %d-%d", p.TenantsLo, p.TenantsHi)
	}
	if p.MaxTenants != p.TenantsLo {
		t.Errorf("headline answer %d is not the band minimum %d", p.MaxTenants, p.TenantsLo)
	}
	row := p.Row()
	if row.Seeds != 3 || row.TenantsLo != p.TenantsLo || row.TenantsHi != p.TenantsHi {
		t.Errorf("band lost in the JSON row: %+v", row)
	}
}

// TestPlanAdmissionChurn: spreading arrivals out can only help — at a
// churn rate where the suite's windows no longer overlap, the pool must
// admit at least as many tenants as it does at steady state, and the
// points must echo the rate they planned for.
func TestPlanAdmissionChurn(t *testing.T) {
	eng := NewEngine(0, nil)
	ctx := context.Background()
	ask := func(rate float64) AdmissionPoint {
		points, err := eng.PlanAdmissionQuery(ctx, testWorkload(), core.DefaultConfig(), AdmissionQuery{
			Pool:       PoolConfig{Cores: 2},
			SLOs:       []float64{1.5},
			MaxTenants: 3,
			Churn:      Churn{Rate: rate},
		})
		if err != nil {
			t.Fatal(err)
		}
		return points[0]
	}
	fixed := ask(0)
	churned := ask(16)
	if churned.ChurnRate != 16 || fixed.ChurnRate != 0 {
		t.Errorf("points do not echo their churn rates: %+v, %+v", fixed, churned)
	}
	if churned.MaxTenants < fixed.MaxTenants {
		t.Errorf("disjoint windows admit %d tenants, fewer than the %d of steady state",
			churned.MaxTenants, fixed.MaxTenants)
	}
	if churned.MaxTenants != 3 {
		t.Errorf("fully-disjoint windows admit %d of 3 searched tenants", churned.MaxTenants)
	}
	// Peak concurrency rides along from the planner's own probes: a fixed
	// set peaks at the full population, a churned one within [1, admitted].
	if fixed.MaxTenants > 0 && fixed.PeakAtMax != fixed.MaxTenants {
		t.Errorf("fixed-set peak %d != admitted %d", fixed.PeakAtMax, fixed.MaxTenants)
	}
	if churned.PeakAtMax < 1 || churned.PeakAtMax > churned.MaxTenants {
		t.Errorf("churned peak %d outside [1, %d]", churned.PeakAtMax, churned.MaxTenants)
	}
}
