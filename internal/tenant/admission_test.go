package tenant

import (
	"context"
	"testing"

	"repro/internal/core"
)

func TestPlanAdmissionRejectsBadInputs(t *testing.T) {
	eng := NewEngine(1, nil)
	ctx := context.Background()
	pool := PoolConfig{Cores: 1}
	if _, err := eng.PlanAdmission(ctx, testWorkload(), core.DefaultConfig(), pool, []float64{2}, 0); err == nil {
		t.Error("maxTenants 0 must be rejected")
	}
	if _, err := eng.PlanAdmission(ctx, testWorkload(), core.DefaultConfig(), pool, nil, 3); err == nil {
		t.Error("empty SLO list must be rejected")
	}
	if _, err := eng.PlanAdmission(ctx, testWorkload(), core.DefaultConfig(), pool, []float64{0.9}, 3); err == nil {
		t.Error("sub-1 slowdown SLO must be rejected")
	}
}

func TestPlanAdmission(t *testing.T) {
	eng := NewEngine(0, nil)
	pool := PoolConfig{Cores: 2, Policy: PolicyLeastLag}
	slos := []float64{1.05, 2.0, 1e9}
	const maxN = 5
	points, err := eng.PlanAdmission(context.Background(), testWorkload(), core.DefaultConfig(), pool, slos, maxN)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(slos) {
		t.Fatalf("got %d points for %d SLOs", len(points), len(slos))
	}
	for i, p := range points {
		if p.SLO != slos[i] {
			t.Errorf("point %d answers SLO %g, want %g", i, p.SLO, slos[i])
		}
		if p.Cores != pool.Cores || p.Policy != PolicyLeastLag {
			t.Errorf("point %d misidentifies its pool: %+v", i, p)
		}
		if p.Searched != maxN {
			t.Errorf("point %d searched %d, want %d", i, p.Searched, maxN)
		}
		// A single tenant on any pool has contention factor exactly 1.0
		// (the decomposition contract), so every SLO admits at least one.
		if p.MaxTenants < 1 || p.MaxTenants > maxN {
			t.Errorf("point %d admits %d tenants, outside [1, %d]", i, p.MaxTenants, maxN)
		}
		if p.MaxTenants > 0 && p.ContentionAtMax > p.SLO {
			t.Errorf("point %d admits %d tenants at %fX contention, violating its own SLO %g",
				i, p.MaxTenants, p.ContentionAtMax, p.SLO)
		}
		// A looser SLO can never admit fewer tenants.
		if i > 0 && p.MaxTenants < points[i-1].MaxTenants {
			t.Errorf("SLO %g admits %d tenants but tighter SLO %g admitted %d",
				p.SLO, p.MaxTenants, points[i-1].SLO, points[i-1].MaxTenants)
		}
	}
	// An absurdly loose SLO never saturates within the scan.
	if last := points[len(points)-1]; last.MaxTenants != maxN {
		t.Errorf("1e9X SLO admitted %d tenants, want the full scan %d", last.MaxTenants, maxN)
	}

	// The scan must reuse profiles: tenant k is shared by every
	// population containing it, so exactly maxN unique profiles run.
	if got := eng.profiles.Misses(); got != maxN {
		t.Errorf("admission scan profiled %d times, want %d (one per unique tenant)", got, maxN)
	}
}

func TestAdmissionPointRow(t *testing.T) {
	p := AdmissionPoint{SLO: 1.5, Cores: 4, Policy: PolicyWFQ, MaxTenants: 6, ContentionAtMax: 1.4, Searched: 8}
	row := p.Row()
	if row.SLOContentionX != 1.5 || row.Cores != 4 || row.Policy != PolicyWFQ ||
		row.MaxTenants != 6 || row.ContentionAtMax != 1.4 || row.SearchedTenants != 8 {
		t.Errorf("Row() lost fields: %+v", row)
	}
}
