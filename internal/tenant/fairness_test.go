package tenant

import (
	"math/rand"
	"testing"
)

// TestPropertyWFQFairness is the WFQ fairness property over randomized
// weights and timelines on a saturated pool.
//
// A note on what "fairness" can mean here: the pool is placement-only and
// work-conserving — every produced record is scheduled at production time
// and eventually served, so each tenant's served-byte share equals its
// demand share *exactly*, under every policy and any weights. Byte
// throughput is conserved; the currency a placement policy actually
// redistributes is delay. The test therefore pins both halves:
//
//  1. Conservation: per-tenant served bytes equal produced bytes, so
//     served-byte ratios equal demand ratios (trivially "within
//     tolerance" of any target only when demand matches it — weights
//     cannot starve anyone of throughput).
//  2. Delay differentiation: WFQ maps service rank onto the pool, so
//     under saturation the most underserved-by-weight tenant holds the
//     soonest-free cores and the most overserved holds the latest-free
//     core. With distinct weights the uniquely lightest tenant must see
//     the worst mean lag of the set, and the uniquely heaviest must sit
//     within noise of the best (tolerances measured on this workload
//     family: the lightest is >= 2% worse than the heaviest, the
//     heaviest within 2% of the best non-lightest tenant).
func TestPropertyWFQFairness(t *testing.T) {
	weightsBase := []float64{32, 16, 8, 4, 2, 1}
	for _, seed := range []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		rng := rand.New(rand.NewSource(seed))
		n := len(weightsBase)
		weights := append([]float64(nil), weightsBase...)
		rng.Shuffle(n, func(i, j int) { weights[i], weights[j] = weights[j], weights[i] })

		// Per-tenant sparse (in-burst gap ~40 > cost + transport latency,
		// so a tenant's own channel never serialises it), aggregate
		// saturated (6 tenants * ~16 cost / ~40 gap ~ 2.4 demanded cores
		// on 2) — the regime where core placement, and therefore the
		// policy, decides who waits.
		profiles := synthSet(seed, n, func(r *rand.Rand) []step {
			return burstTimeline(r, 50, 25, 4000, 35, 45, 12, 20)
		})
		servedBits := make([]uint64, n)
		res, err := replayObserved(profiles, PoolConfig{Cores: 2, Policy: PolicyWFQ, Weights: weights},
			func(tenant, core int, req Request, charge, finish uint64) {
				servedBits[tenant] += req.Bits
			})
		if err != nil {
			t.Fatal(err)
		}

		// (1) Conservation: every produced byte is scheduled and served,
		// so served-byte ratios equal demand ratios exactly.
		for i := range profiles {
			if servedBits[i] != profiles[i].Result.LogBits {
				t.Errorf("seed %d: tenant %d served %d bits of %d produced (conservation)",
					seed, i, servedBits[i], profiles[i].Result.LogBits)
			}
		}

		// (2) Delay differentiation at the rank extremes.
		lightest, heaviest := 0, 0
		for i := range weights {
			if weights[i] < weights[lightest] {
				lightest = i
			}
			if weights[i] > weights[heaviest] {
				heaviest = i
			}
		}
		lagLight := res.Tenants[lightest].MeanLagCycles
		lagHeavy := res.Tenants[heaviest].MeanLagCycles
		bestOther := -1.0
		for i, tr := range res.Tenants {
			if i == lightest {
				continue
			}
			if lagLight < tr.MeanLagCycles {
				t.Errorf("seed %d: weight-%g tenant lags %.1f, less than weight-%g tenant's %.1f (lightest must wait most)",
					seed, weights[lightest], lagLight, weights[i], tr.MeanLagCycles)
			}
			if i != heaviest && (bestOther < 0 || tr.MeanLagCycles < bestOther) {
				bestOther = tr.MeanLagCycles
			}
		}
		if lagLight < lagHeavy*1.02 {
			t.Errorf("seed %d: lightest tenant's lag %.1f not measurably worse than heaviest's %.1f",
				seed, lagLight, lagHeavy)
		}
		if lagHeavy > bestOther*1.02 {
			t.Errorf("seed %d: heaviest tenant's lag %.1f more than 2%% off the best peer's %.1f",
				seed, lagHeavy, bestOther)
		}
	}
}

// TestPropertyConservationAllPolicies extends the conservation half to
// every registered policy and a non-zero migration penalty: weights,
// tiers, warmth and penalties shift *when* records are served, never
// *whether* — per-tenant record and byte counts are invariant.
func TestPropertyConservationAllPolicies(t *testing.T) {
	profiles := synthSet(42, 4, func(r *rand.Rand) []step {
		return burstTimeline(r, 20, 20, 3000, 5, 25, 8, 24)
	})
	for _, policy := range Policies() {
		pool := PoolConfig{Cores: 3, Policy: policy,
			Weights: []float64{4, 1}, Tiers: []int{0, 1}, MigrationPenalty: 40}
		records := make([]uint64, len(profiles))
		bits := make([]uint64, len(profiles))
		if _, err := replayObserved(profiles, pool,
			func(tenant, core int, req Request, charge, finish uint64) {
				records[tenant]++
				bits[tenant] += req.Bits
			}); err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		for i, p := range profiles {
			if records[i] != p.Result.Records || bits[i] != p.Result.LogBits {
				t.Errorf("%s: tenant %d served %d records / %d bits, produced %d / %d",
					policy, i, records[i], bits[i], p.Result.Records, p.Result.LogBits)
			}
		}
	}
}
