package tenant

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// benchSuiteProfiles builds the n-tenant benchmark population once: the
// standard suite at the given scale, profiled uncontended. Profiles are
// immutable, so every benchmark iteration replays the same inputs.
func benchSuiteProfiles(b *testing.B, n, scale int) []*Profile {
	b.Helper()
	eng := NewEngine(0, nil)
	set, err := FromSuite(n, workloads.Config{Scale: scale}, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	profiles := make([]*Profile, n)
	for i, t := range set {
		p, err := eng.Profile(context.Background(), t)
		if err != nil {
			b.Fatal(err)
		}
		profiles[i] = p
	}
	return profiles
}

// benchReplay measures one (policy, dispatch) cell: wall time per replay
// with allocation counts, plus the replayed record count as a metric so
// ns/record is derivable from the output.
func benchReplay(b *testing.B, profiles []*Profile, policy string, mode Dispatch) {
	pool := PoolConfig{Cores: 2, Policy: policy, MigrationPenalty: 320}
	var records uint64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := ReplayPool(profiles, pool, mode)
		if err != nil {
			b.Fatal(err)
		}
		records = 0
		for _, tr := range res.Tenants {
			records += tr.Records
		}
	}
	b.ReportMetric(float64(records), "records")
}

// BenchmarkReplay pins the per-policy replay cost on the 4-tenant suite
// for both dispatch paths. CI's bench job and `make bench` derive the
// BENCH_replay.json trajectory from the same pairing via cmd/lbabench
// -bench replay; see docs/performance.md.
func BenchmarkReplay(b *testing.B) {
	profiles := benchSuiteProfiles(b, 4, 300_000)
	for _, mode := range []struct {
		name string
		mode Dispatch
	}{
		{"batched", DispatchBatched},
		{"per-record", DispatchPerRecord},
	} {
		b.Run(mode.name, func(b *testing.B) {
			for _, policy := range Policies() {
				b.Run(policy, func(b *testing.B) {
					benchReplay(b, profiles, policy, mode.mode)
				})
			}
		})
	}
}
