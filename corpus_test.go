package repro

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/harness"
)

// TestScenarioCorpus is the integration tier over the checked-in scenario
// corpus: every runlist row under corpus/ must pass its criteria file, so
// the corpus doubles as the project's open-ended regression suite — adding
// coverage means adding a CSV row and a criteria file, not test code. The
// same corpus runs under cmd/lbaharness and the CI harness smoke step; see
// docs/harness.md.
func TestScenarioCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario corpus is the long integration tier")
	}
	scenarios, err := harness.LoadRunlist("corpus/runlist.csv")
	if err != nil {
		t.Fatalf("LoadRunlist: %v", err)
	}
	if len(scenarios) < 12 {
		t.Fatalf("seed corpus shrank to %d scenarios; keep at least 12", len(scenarios))
	}
	criteria, err := harness.LoadAllCriteria("corpus/criteria", scenarios)
	if err != nil {
		t.Fatalf("LoadAllCriteria: %v", err)
	}

	sum, err := harness.Run(context.Background(), scenarios, criteria, harness.Options{})
	if err != nil {
		t.Fatalf("harness.Run: %v", err)
	}
	if sum.Failed == 0 {
		return
	}
	for _, r := range sum.Scenarios {
		if r.Status == harness.StatusPass {
			continue
		}
		for _, ck := range r.Checks {
			if !ck.Pass {
				t.Errorf("scenario %s: %s: want %s, got %s", r.ID, ck.Name, ck.Want, ck.Got)
			}
		}
	}
}

// TestScenarioCorpusMemoryBounded pins the memory side of the large-trace
// scenario: pool-large-trace runs at 6x the corpus default scale, and its
// tenant timelines replay through the streaming window path (segment
// decode into a small recycled ring; see docs/performance.md), so the
// live heap left behind by the run must stay far below what materialised
// []step timelines plus replay state would cost as traces grow. The CI
// harness-smoke job bounds the transient side by running the whole corpus
// under GOMEMLIMIT; this test bounds the steady-state side in-process
// with runtime.ReadMemStats.
func TestScenarioCorpusMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario corpus is the long integration tier")
	}
	scenarios, err := harness.LoadRunlist("corpus/runlist.csv")
	if err != nil {
		t.Fatalf("LoadRunlist: %v", err)
	}
	large := scenarios[:0:0]
	for _, s := range scenarios {
		if s.ID == "pool-large-trace" {
			large = append(large, s)
		}
	}
	if len(large) != 1 {
		t.Fatalf("runlist holds %d pool-large-trace rows, want exactly 1", len(large))
	}
	criteria, err := harness.LoadAllCriteria("corpus/criteria", large)
	if err != nil {
		t.Fatalf("LoadAllCriteria: %v", err)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	sum, err := harness.Run(context.Background(), large, criteria, harness.Options{})
	if err != nil {
		t.Fatalf("harness.Run: %v", err)
	}
	if sum.Failed != 0 {
		t.Fatalf("pool-large-trace failed %d checks; see TestScenarioCorpus for details", sum.Failed)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)

	// The run retains nothing the caller doesn't hold (the summary and
	// its artifact); memoized engines are garbage once harness.Run
	// returns. 64 MiB is ~4x the scenario's whole working set today and
	// far below what leaking per-tenant materialised timelines or replay
	// arenas across the run would cost at larger scales.
	const ceiling = 64 << 20
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > ceiling {
		t.Fatalf("pool-large-trace left %d B of live heap behind, ceiling %d B", grew, ceiling)
	}
}
