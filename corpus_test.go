package repro

import (
	"context"
	"testing"

	"repro/internal/harness"
)

// TestScenarioCorpus is the integration tier over the checked-in scenario
// corpus: every runlist row under corpus/ must pass its criteria file, so
// the corpus doubles as the project's open-ended regression suite — adding
// coverage means adding a CSV row and a criteria file, not test code. The
// same corpus runs under cmd/lbaharness and the CI harness smoke step; see
// docs/harness.md.
func TestScenarioCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario corpus is the long integration tier")
	}
	scenarios, err := harness.LoadRunlist("corpus/runlist.csv")
	if err != nil {
		t.Fatalf("LoadRunlist: %v", err)
	}
	if len(scenarios) < 12 {
		t.Fatalf("seed corpus shrank to %d scenarios; keep at least 12", len(scenarios))
	}
	criteria, err := harness.LoadAllCriteria("corpus/criteria", scenarios)
	if err != nil {
		t.Fatalf("LoadAllCriteria: %v", err)
	}

	sum, err := harness.Run(context.Background(), scenarios, criteria, harness.Options{})
	if err != nil {
		t.Fatalf("harness.Run: %v", err)
	}
	if sum.Failed == 0 {
		return
	}
	for _, r := range sum.Scenarios {
		if r.Status == harness.StatusPass {
			continue
		}
		for _, ck := range r.Checks {
			if !ck.Pass {
				t.Errorf("scenario %s: %s: want %s, got %s", r.ID, ck.Name, ck.Want, ck.Got)
			}
		}
	}
}
