// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation (DESIGN.md §4 maps each benchmark function to its
// experiment id). Run with:
//
//	go test -bench=. -benchmem
//
// Each Figure/Table benchmark executes the full experiment per iteration
// and reports the headline quantities as custom metrics, so `-bench` output
// doubles as the reproduction record. Absolute wall times are simulator
// throughput, not the paper's numbers; the custom metrics (slowdowns,
// bytes/record) are the reproduced results.
package repro

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/figures"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/vpc"
	"repro/internal/workloads"
)

// benchScale is the per-run dynamic instruction count for the figure
// benchmarks: large enough to sit in steady state, small enough that the
// full harness finishes in minutes.
const benchScale = 400_000

// benchReport collects every simulation the figure benchmarks execute,
// deduplicated by job key, plus the headline metrics they report. When
// BENCH_JSON names a file, TestMain writes the merged runner report there
// so CI can upload it as a trajectory artifact.
var benchReport = struct {
	sync.Mutex
	rows         map[string]runner.Row
	metrics      map[string]float64
	hits, misses uint64
}{rows: map[string]runner.Row{}, metrics: map[string]float64{}}

// recordEngine folds one engine's executed simulations into the report.
func recordEngine(eng *runner.Engine) {
	rep := eng.Report()
	benchReport.Lock()
	defer benchReport.Unlock()
	for _, row := range rep.Rows {
		benchReport.rows[row.Key] = row
	}
	benchReport.hits += rep.CacheHits
	benchReport.misses += rep.CacheMisses
}

// recordMetric stores one headline number alongside b.ReportMetric.
func recordMetric(b *testing.B, name string, v float64, unit string) {
	b.ReportMetric(v, unit)
	benchReport.Lock()
	benchReport.metrics[name] = v
	benchReport.Unlock()
}

// TestMain writes the merged BENCH_JSON artifact after the benchmarks run.
func TestMain(m *testing.M) {
	code := m.Run()
	if path := os.Getenv("BENCH_JSON"); path != "" && code == 0 {
		if err := writeBenchJSON(path); err != nil {
			os.Stderr.WriteString("bench: " + err.Error() + "\n")
			code = 1
		}
	}
	os.Exit(code)
}

func writeBenchJSON(path string) error {
	benchReport.Lock()
	rows := make([]runner.Row, 0, len(benchReport.rows))
	for _, row := range benchReport.rows {
		rows = append(rows, row)
	}
	mets := make(map[string]float64, len(benchReport.metrics))
	for k, v := range benchReport.metrics {
		mets[k] = v
	}
	// Cache counters are summed across every per-iteration engine;
	// Workers stays zero (omitted) since no single pool width applies.
	rep := &runner.Report{
		Schema:      runner.Schema,
		CacheHits:   benchReport.hits,
		CacheMisses: benchReport.misses,
		Rows:        rows,
		Metrics:     mets,
	}
	benchReport.Unlock()

	runner.SortRows(rep.Rows)
	return runner.WriteJSONFile(path, rep)
}

// benchEngine returns a fresh engine per iteration (memoization within an
// iteration is part of the measured harness; across iterations it would
// turn the benchmark into a cache-lookup loop).
func benchEngine() *runner.Engine { return runner.New(0) }

// benchOpts returns fresh experiment options per iteration.
func benchOpts(eng *runner.Engine) figures.Options {
	return figures.Options{Scale: benchScale, Runner: eng}
}

// reportPanel converts a Figure 2 panel into benchmark metrics.
func reportPanel(b *testing.B, lifeguard string) {
	b.Helper()
	var summary figures.PanelSummary
	for i := 0; i < b.N; i++ {
		eng := benchEngine()
		rows, err := figures.Figure2Panel(lifeguard, benchOpts(eng))
		if err != nil {
			b.Fatal(err)
		}
		summary = figures.Summarise(lifeguard, rows)
		recordEngine(eng)
	}
	recordMetric(b, "fig2_"+lifeguard+"_mean_lba_x", summary.MeanLBA, "lba-slowdown-X")
	recordMetric(b, "fig2_"+lifeguard+"_mean_valgrind_x", summary.MeanValgrind, "valgrind-slowdown-X")
	b.ReportMetric(summary.MinSpeedup, "min-speedup-x")
	b.ReportMetric(summary.MaxSpeedup, "max-speedup-x")
}

// BenchmarkFigure2aAddrCheck regenerates Figure 2(a): AddrCheck on the
// seven single-threaded benchmarks. Paper: mean LBA slowdown 3.9X.
func BenchmarkFigure2aAddrCheck(b *testing.B) { reportPanel(b, "AddrCheck") }

// BenchmarkFigure2bTaintCheck regenerates Figure 2(b): TaintCheck. Paper:
// mean LBA slowdown 4.8X.
func BenchmarkFigure2bTaintCheck(b *testing.B) { reportPanel(b, "TaintCheck") }

// BenchmarkFigure2cLockSet regenerates Figure 2(c): LockSet on water and
// zchaff. Paper: mean LBA slowdown 9.7X.
func BenchmarkFigure2cLockSet(b *testing.B) { reportPanel(b, "LockSet") }

// BenchmarkTableCharacteristics regenerates the benchmark-characteristics
// statistics (§3: 51% memory references on average).
func BenchmarkTableCharacteristics(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		eng := benchEngine()
		rows, err := figures.Characterisation(benchOpts(eng))
		if err != nil {
			b.Fatal(err)
		}
		var fracs []float64
		for _, r := range rows {
			fracs = append(fracs, r.MemRefFraction)
		}
		avg = metrics.Mean(fracs)
		recordEngine(eng)
	}
	recordMetric(b, "chars_mean_mem_ref_pct", 100*avg, "mem-ref-%")
}

// BenchmarkTableCompression regenerates the VPC compression table (§2:
// < 1 byte/instruction).
func BenchmarkTableCompression(b *testing.B) {
	var worst, mean float64
	for i := 0; i < b.N; i++ {
		eng := benchEngine()
		rows, err := figures.Compression(figures.Options{Scale: 700_000, Runner: eng})
		if err != nil {
			b.Fatal(err)
		}
		mean, worst = figures.CompressionSummary(rows)
		recordEngine(eng)
	}
	recordMetric(b, "compress_mean_bytes_per_record", mean, "mean-B/record")
	recordMetric(b, "compress_worst_bytes_per_record", worst, "worst-B/record")
}

// BenchmarkTableAverages regenerates the §3 headline text: per-lifeguard
// mean slowdowns and the Valgrind envelope.
func BenchmarkTableAverages(b *testing.B) {
	var addr, taint, lock float64
	for i := 0; i < b.N; i++ {
		eng := benchEngine()
		for _, lifeguard := range []string{"AddrCheck", "TaintCheck", "LockSet"} {
			rows, err := figures.Figure2Panel(lifeguard, benchOpts(eng))
			if err != nil {
				b.Fatal(err)
			}
			s := figures.Summarise(lifeguard, rows)
			switch lifeguard {
			case "AddrCheck":
				addr = s.MeanLBA
			case "TaintCheck":
				taint = s.MeanLBA
			case "LockSet":
				lock = s.MeanLBA
			}
		}
		recordEngine(eng)
	}
	recordMetric(b, "fig2_AddrCheck_mean_lba_x", addr, "addrcheck-X")
	recordMetric(b, "fig2_TaintCheck_mean_lba_x", taint, "taintcheck-X")
	recordMetric(b, "fig2_LockSet_mean_lba_x", lock, "lockset-X")
}

// BenchmarkAblationBufferSize sweeps the log-buffer capacity (experiment
// A-buffer: decoupling vs backpressure).
func BenchmarkAblationBufferSize(b *testing.B) {
	sizes := []uint64{1 << 10, 64 << 10, 1 << 20}
	var small, large float64
	for i := 0; i < b.N; i++ {
		eng := benchEngine()
		rows, err := figures.BufferSweep("gzip", sizes, benchOpts(eng))
		if err != nil {
			b.Fatal(err)
		}
		small, large = rows[0].Slowdown, rows[len(rows)-1].Slowdown
		recordEngine(eng)
	}
	recordMetric(b, fmt.Sprintf("buffer_slowdown_%db_x", sizes[0]), small, "slowdown-1KiB-X")
	recordMetric(b, fmt.Sprintf("buffer_slowdown_%db_x", sizes[len(sizes)-1]), large, "slowdown-1MiB-X")
}

// BenchmarkAblationCompression toggles the VPC engine (A-compress).
func BenchmarkAblationCompression(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		eng := benchEngine()
		rows, err := figures.CompressionAblation("gzip", benchOpts(eng))
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(rows[1].LogBytes) / float64(rows[0].LogBytes)
		recordEngine(eng)
	}
	recordMetric(b, "vpc_log_volume_saving_x", ratio, "log-volume-saving-x")
}

// BenchmarkAblationFiltering measures heap-only address-range filtering
// (A-filter, §3 future work).
func BenchmarkAblationFiltering(b *testing.B) {
	var before, after float64
	for i := 0; i < b.N; i++ {
		eng := benchEngine()
		rows, err := figures.FilterAblation("mcf", benchOpts(eng))
		if err != nil {
			b.Fatal(err)
		}
		before, after = rows[0].Slowdown, rows[1].Slowdown
		recordEngine(eng)
	}
	recordMetric(b, "filter_unfiltered_x", before, "unfiltered-X")
	recordMetric(b, "filter_filtered_x", after, "filtered-X")
}

// BenchmarkAblationParallelLifeguard measures the k-core lifeguard
// (A-parallel, §3 future work).
func BenchmarkAblationParallelLifeguard(b *testing.B) {
	var one, four float64
	for i := 0; i < b.N; i++ {
		eng := benchEngine()
		rows, err := figures.ParallelSweep("tidy", []int{1, 4}, benchOpts(eng))
		if err != nil {
			b.Fatal(err)
		}
		one, four = rows[0].Slowdown, rows[1].Slowdown
		recordEngine(eng)
	}
	recordMetric(b, "parallel_lifeguard_1core_x", one, "1-core-X")
	recordMetric(b, "parallel_lifeguard_4core_x", four, "4-cores-X")
}

// BenchmarkAblationSyscallStall measures the containment rule's cost
// (A-stall, §2).
func BenchmarkAblationSyscallStall(b *testing.B) {
	var maxShare float64
	for i := 0; i < b.N; i++ {
		eng := benchEngine()
		rows, err := figures.SyscallStallTable(benchOpts(eng))
		if err != nil {
			b.Fatal(err)
		}
		maxShare = figures.WorstDrainShare(rows)
		recordEngine(eng)
	}
	recordMetric(b, "stall_worst_drain_pct", 100*maxShare, "worst-drain-%")
}

// --- Substrate micro-benchmarks -----------------------------------------

// BenchmarkVPCCompress measures compressor throughput on a hot-loop trace.
func BenchmarkVPCCompress(b *testing.B) {
	rec := event.Record{
		Type: event.TLoad, PC: isa.PCForIndex(10),
		In1: 1, In2: event.OpNone, Out: 2, Size: 8, Addr: 0x2000_0000,
	}
	c := vpc.NewCompressor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Addr += 8
		c.Append(rec)
	}
	b.ReportMetric(c.BytesPerRecord(), "B/record")
}

// BenchmarkCacheAccess measures the cache model's lookup rate.
func BenchmarkCacheAccess(b *testing.B) {
	h := mem.NewHierarchy(mem.DefaultHierarchyConfig(1))
	port := h.Port(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		port.Data(uint64(i*64)%(1<<20), 8, i&1 == 0)
	}
}

// BenchmarkLBAPipeline measures end-to-end simulation throughput
// (instructions simulated per wall second) on the gzip workload.
func BenchmarkLBAPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := workloads.BuildGzip(workloads.Config{Scale: benchScale})
		res, err := core.RunLBA(p, "AddrCheck", core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(res.Instructions))
	}
}

// BenchmarkUnmonitoredPipeline is the baseline simulator throughput.
func BenchmarkUnmonitoredPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := workloads.BuildGzip(workloads.Config{Scale: benchScale})
		res, err := core.RunUnmonitored(p, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(res.Instructions))
	}
}

// BenchmarkAblationDispatchPipelining measures the nlba early-index
// optimisation (§2).
func BenchmarkAblationDispatchPipelining(b *testing.B) {
	var on, off float64
	for i := 0; i < b.N; i++ {
		eng := benchEngine()
		rows, err := figures.PipelineAblation("bc", benchOpts(eng))
		if err != nil {
			b.Fatal(err)
		}
		on, off = rows[0].Slowdown, rows[1].Slowdown
		recordEngine(eng)
	}
	recordMetric(b, "dispatch_pipelined_x", on, "pipelined-X")
	recordMetric(b, "dispatch_serialised_x", off, "serialised-X")
}
