// Package repro's benchmark harness regenerates every table and figure of
// the paper's evaluation (DESIGN.md §4 maps each benchmark function to its
// experiment id). Run with:
//
//	go test -bench=. -benchmem
//
// Each Figure/Table benchmark executes the full experiment per iteration
// and reports the headline quantities as custom metrics, so `-bench` output
// doubles as the reproduction record. Absolute wall times are simulator
// throughput, not the paper's numbers; the custom metrics (slowdowns,
// bytes/record) are the reproduced results.
package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/figures"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/vpc"
	"repro/internal/workloads"
)

// benchScale is the per-run dynamic instruction count for the figure
// benchmarks: large enough to sit in steady state, small enough that the
// full harness finishes in minutes.
const benchScale = 400_000

// benchOpts returns fresh experiment options per iteration.
func benchOpts() figures.Options { return figures.Options{Scale: benchScale} }

// reportPanel converts a Figure 2 panel into benchmark metrics.
func reportPanel(b *testing.B, lifeguard string) {
	b.Helper()
	var summary figures.PanelSummary
	for i := 0; i < b.N; i++ {
		rows, err := figures.Figure2Panel(lifeguard, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		summary = figures.Summarise(lifeguard, rows)
	}
	b.ReportMetric(summary.MeanLBA, "lba-slowdown-X")
	b.ReportMetric(summary.MeanValgrind, "valgrind-slowdown-X")
	b.ReportMetric(summary.MinSpeedup, "min-speedup-x")
	b.ReportMetric(summary.MaxSpeedup, "max-speedup-x")
}

// BenchmarkFigure2aAddrCheck regenerates Figure 2(a): AddrCheck on the
// seven single-threaded benchmarks. Paper: mean LBA slowdown 3.9X.
func BenchmarkFigure2aAddrCheck(b *testing.B) { reportPanel(b, "AddrCheck") }

// BenchmarkFigure2bTaintCheck regenerates Figure 2(b): TaintCheck. Paper:
// mean LBA slowdown 4.8X.
func BenchmarkFigure2bTaintCheck(b *testing.B) { reportPanel(b, "TaintCheck") }

// BenchmarkFigure2cLockSet regenerates Figure 2(c): LockSet on water and
// zchaff. Paper: mean LBA slowdown 9.7X.
func BenchmarkFigure2cLockSet(b *testing.B) { reportPanel(b, "LockSet") }

// BenchmarkTableCharacteristics regenerates the benchmark-characteristics
// statistics (§3: 51% memory references on average).
func BenchmarkTableCharacteristics(b *testing.B) {
	var avg float64
	for i := 0; i < b.N; i++ {
		rows, err := figures.Characterisation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		var fracs []float64
		for _, r := range rows {
			fracs = append(fracs, r.MemRefFraction)
		}
		avg = metrics.Mean(fracs)
	}
	b.ReportMetric(100*avg, "mem-ref-%")
}

// BenchmarkTableCompression regenerates the VPC compression table (§2:
// < 1 byte/instruction).
func BenchmarkTableCompression(b *testing.B) {
	var worst, mean float64
	for i := 0; i < b.N; i++ {
		rows, err := figures.Compression(figures.Options{Scale: 700_000})
		if err != nil {
			b.Fatal(err)
		}
		worst, mean = 0, 0
		for _, r := range rows {
			if r.BytesPerRecord > worst {
				worst = r.BytesPerRecord
			}
			mean += r.BytesPerRecord
		}
		mean /= float64(len(rows))
	}
	b.ReportMetric(mean, "mean-B/record")
	b.ReportMetric(worst, "worst-B/record")
}

// BenchmarkTableAverages regenerates the §3 headline text: per-lifeguard
// mean slowdowns and the Valgrind envelope.
func BenchmarkTableAverages(b *testing.B) {
	var addr, taint, lock float64
	for i := 0; i < b.N; i++ {
		for _, lifeguard := range []string{"AddrCheck", "TaintCheck", "LockSet"} {
			rows, err := figures.Figure2Panel(lifeguard, benchOpts())
			if err != nil {
				b.Fatal(err)
			}
			s := figures.Summarise(lifeguard, rows)
			switch lifeguard {
			case "AddrCheck":
				addr = s.MeanLBA
			case "TaintCheck":
				taint = s.MeanLBA
			case "LockSet":
				lock = s.MeanLBA
			}
		}
	}
	b.ReportMetric(addr, "addrcheck-X")
	b.ReportMetric(taint, "taintcheck-X")
	b.ReportMetric(lock, "lockset-X")
}

// BenchmarkAblationBufferSize sweeps the log-buffer capacity (experiment
// A-buffer: decoupling vs backpressure).
func BenchmarkAblationBufferSize(b *testing.B) {
	sizes := []uint64{1 << 10, 64 << 10, 1 << 20}
	var small, large float64
	for i := 0; i < b.N; i++ {
		rows, err := figures.BufferSweep("gzip", sizes, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		small, large = rows[0].Slowdown, rows[len(rows)-1].Slowdown
	}
	b.ReportMetric(small, "slowdown-1KiB-X")
	b.ReportMetric(large, "slowdown-1MiB-X")
}

// BenchmarkAblationCompression toggles the VPC engine (A-compress).
func BenchmarkAblationCompression(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows, err := figures.CompressionAblation("gzip", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		ratio = float64(rows[1].LogBytes) / float64(rows[0].LogBytes)
	}
	b.ReportMetric(ratio, "log-volume-saving-x")
}

// BenchmarkAblationFiltering measures heap-only address-range filtering
// (A-filter, §3 future work).
func BenchmarkAblationFiltering(b *testing.B) {
	var before, after float64
	for i := 0; i < b.N; i++ {
		rows, err := figures.FilterAblation("mcf", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		before, after = rows[0].Slowdown, rows[1].Slowdown
	}
	b.ReportMetric(before, "unfiltered-X")
	b.ReportMetric(after, "filtered-X")
}

// BenchmarkAblationParallelLifeguard measures the k-core lifeguard
// (A-parallel, §3 future work).
func BenchmarkAblationParallelLifeguard(b *testing.B) {
	var one, four float64
	for i := 0; i < b.N; i++ {
		rows, err := figures.ParallelSweep("tidy", []int{1, 4}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		one, four = rows[0].Slowdown, rows[1].Slowdown
	}
	b.ReportMetric(one, "1-core-X")
	b.ReportMetric(four, "4-cores-X")
}

// BenchmarkAblationSyscallStall measures the containment rule's cost
// (A-stall, §2).
func BenchmarkAblationSyscallStall(b *testing.B) {
	var maxShare float64
	for i := 0; i < b.N; i++ {
		rows, err := figures.SyscallStallTable(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		maxShare = 0
		for _, r := range rows {
			if r.DrainShare > maxShare {
				maxShare = r.DrainShare
			}
		}
	}
	b.ReportMetric(100*maxShare, "worst-drain-%")
}

// --- Substrate micro-benchmarks -----------------------------------------

// BenchmarkVPCCompress measures compressor throughput on a hot-loop trace.
func BenchmarkVPCCompress(b *testing.B) {
	rec := event.Record{
		Type: event.TLoad, PC: isa.PCForIndex(10),
		In1: 1, In2: event.OpNone, Out: 2, Size: 8, Addr: 0x2000_0000,
	}
	c := vpc.NewCompressor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Addr += 8
		c.Append(rec)
	}
	b.ReportMetric(c.BytesPerRecord(), "B/record")
}

// BenchmarkCacheAccess measures the cache model's lookup rate.
func BenchmarkCacheAccess(b *testing.B) {
	h := mem.NewHierarchy(mem.DefaultHierarchyConfig(1))
	port := h.Port(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		port.Data(uint64(i*64)%(1<<20), 8, i&1 == 0)
	}
}

// BenchmarkLBAPipeline measures end-to-end simulation throughput
// (instructions simulated per wall second) on the gzip workload.
func BenchmarkLBAPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := workloads.BuildGzip(workloads.Config{Scale: benchScale})
		res, err := core.RunLBA(p, "AddrCheck", core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(res.Instructions))
	}
}

// BenchmarkUnmonitoredPipeline is the baseline simulator throughput.
func BenchmarkUnmonitoredPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := workloads.BuildGzip(workloads.Config{Scale: benchScale})
		res, err := core.RunUnmonitored(p, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(res.Instructions))
	}
}

// BenchmarkAblationDispatchPipelining measures the nlba early-index
// optimisation (§2).
func BenchmarkAblationDispatchPipelining(b *testing.B) {
	var on, off float64
	for i := 0; i < b.N; i++ {
		rows, err := figures.PipelineAblation("bc", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		on, off = rows[0].Slowdown, rows[1].Slowdown
	}
	b.ReportMetric(on, "pipelined-X")
	b.ReportMetric(off, "serialised-X")
}
